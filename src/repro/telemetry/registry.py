"""Fixed-bucket latency histograms and the process-wide telemetry registry.

Histograms serve two audiences with one data structure:

* **Prometheus scrapes** read the cumulative fixed-bucket counts
  (``_bucket{le=...}`` / ``_sum`` / ``_count``) rendered by
  :meth:`TelemetryRegistry.render_prometheus`.
* **Benchmarks and humans** read exact nearest-rank percentiles
  (p50/p95/p99/p999) computed over a bounded ring of retained raw samples
  with the *same* :func:`repro.metrics.collector.percentile` the bench
  ``summarize`` uses — so a p99 printed by a benchmark row and a p99
  scraped from ``/metrics`` agree by construction.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable

from ..metrics.collector import percentile

#: Cumulative upper bounds in milliseconds, chosen to straddle the paper's
#: 500 ms interactivity budget with sub-millisecond resolution at the
#: cache-hit end and multi-second resolution at the disaster end.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Percentiles exposed everywhere: snapshots, bench rows, /metrics gauges.
PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p999", 0.999),
)


class Histogram:
    """Thread-safe latency histogram: fixed buckets + bounded sample ring."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_samples", "_lock")

    def __init__(
        self,
        buckets: Iterable[float] | None = None,
        *,
        sample_limit: int = 2048,
    ) -> None:
        self.buckets = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS_MS
        self._counts = [0] * (len(self.buckets) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        #: Newest raw observations, for exact small-n percentiles.  A ring
        #: (not a reservoir) because interactive workloads care about the
        #: *recent* tail, and benchmark runs fit entirely inside it.
        self._samples: deque[float] = deque(maxlen=sample_limit)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, fraction: float) -> float:
        """Exact nearest-rank percentile over the retained sample ring."""
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return 0.0
        return percentile(data, fraction)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, total)``."""
        with self._lock:
            counts = list(self._counts)
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            data = sorted(self._samples)
            count = self._count
            total = self._sum
        snap: dict[str, float] = {
            "count": float(count),
            "sum_ms": round(total, 3),
            "mean_ms": round(total / count, 3) if count else 0.0,
        }
        for label, fraction in PERCENTILES:
            snap[label] = round(percentile(data, fraction), 3) if data else 0.0
        return snap


class Counter:
    """A thread-safe monotonically increasing event counter.

    The registry's non-duration metric: decisions and actions (how many
    times did the autopilot migrate?) are counts, not latencies, so they
    get a cumulative counter rendered as ``kyrix_events_total`` instead of
    a histogram.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def bump(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class TelemetryRegistry:
    """Process-wide map of span name -> duration histogram (+ event counters)."""

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}
        self._counters: dict[str, Counter] = {}
        self._lock = threading.Lock()

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            return histogram

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def observe_span(self, name: str, duration_ms: float) -> None:
        self.histogram(name).observe(duration_ms)

    def reset(self) -> None:
        with self._lock:
            self._histograms = {}
            self._counters = {}

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{span_name: {count, sum_ms, mean_ms, p50, p95, p99, p999}}``."""
        with self._lock:
            items = sorted(self._histograms.items())
        return {name: histogram.snapshot() for name, histogram in items}

    def counters_snapshot(self) -> dict[str, int]:
        """``{counter_name: value}`` for every registered event counter."""
        with self._lock:
            items = sorted(self._counters.items())
        return {name: counter.value for name, counter in items}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (v0.0.4) of every span histogram."""
        lines = [
            "# HELP kyrix_span_duration_ms Span duration by serving layer.",
            "# TYPE kyrix_span_duration_ms histogram",
        ]
        with self._lock:
            items = sorted(self._histograms.items())
        for name, histogram in items:
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            for bound, cumulative in histogram.bucket_counts():
                le = "+Inf" if bound == float("inf") else format(bound, "g")
                lines.append(
                    f'kyrix_span_duration_ms_bucket{{span="{label}",le="{le}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'kyrix_span_duration_ms_sum{{span="{label}"}} '
                f"{histogram.sum:.6f}"
            )
            lines.append(
                f'kyrix_span_duration_ms_count{{span="{label}"}} {histogram.count}'
            )
        lines.append(
            "# HELP kyrix_span_duration_ms_quantile Nearest-rank percentile "
            "over recent samples."
        )
        lines.append("# TYPE kyrix_span_duration_ms_quantile gauge")
        for name, histogram in items:
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            for quantile_label, fraction in PERCENTILES:
                value = histogram.percentile(fraction)
                lines.append(
                    f"kyrix_span_duration_ms_quantile"
                    f'{{span="{label}",quantile="{quantile_label}"}} {value:.6f}'
                )
        counters = self.counters_snapshot()
        if counters:
            lines.append(
                "# HELP kyrix_events_total Cumulative event counters "
                "(autopilot decisions and other non-duration metrics)."
            )
            lines.append("# TYPE kyrix_events_total counter")
            for name, value in counters.items():
                label = name.replace("\\", "\\\\").replace('"', '\\"')
                lines.append(f'kyrix_events_total{{event="{label}"}} {value}')
        return "\n".join(lines) + "\n"
