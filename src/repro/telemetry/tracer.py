"""Per-request distributed tracing over threads, wires and processes.

A *trace* is the full story of one request: a tree of timed *spans*, one
per serving layer (router, cache, coalescer, scatter, shard, replica
attempt, rpc, backend execute).  Traces cross three kinds of boundary:

* **thread pools** — the scatter/gather executor runs shard fan-out on
  worker threads; :meth:`Tracer.attach` re-binds such a thread to the
  caller's trace so its spans land in the same record,
* **the JSON wire** — :meth:`Tracer.current_context` produces the
  ``TraceContext`` dict (``trace_id`` / ``span_id`` / ``sampled``) that the
  transport stub injects into the request envelope,
* **process boundaries** — the worker-side transport adopts an incoming
  context with :meth:`Tracer.remote_trace`, collects the spans produced
  while serving the request, and ships them back inside the reply where
  the stub re-ingests them.  Worker-side spans therefore carry the
  *parent* trace id even though they were timed in another process.

Completed traces land in a bounded ring buffer (``trace_buffer`` newest
traces) and, optionally, as one JSON line per trace in ``export_path`` for
offline analysis via ``python -m repro.telemetry.dump``.

When tracing is disabled every ``span()`` call returns the shared
:data:`NULL_SPAN` singleton — no allocation, no locking, no timestamps —
so the instrumentation is effectively free on the serving hot path.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


class _NullSpan:
    """Shared no-op span returned while tracing is disabled or unsampled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass


#: The singleton handed out whenever tracing is off.
NULL_SPAN = _NullSpan()


class Span:
    """One timed operation inside a trace (mutable while open).

    Used as a context manager: entering starts the clock, exiting stops it,
    records the span into its trace and feeds the duration histogram.  An
    exception escaping the block stamps an ``error`` attribute before
    propagating.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_unix_ms",
        "duration_ms",
        "attributes",
        "events",
        "_start_perf",
        "_tracer",
        "_record",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        tracer: "Tracer",
        record: "_TraceRecord",
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        # Wall-clock epoch timestamp for export alignment, not a duration
        # (durations come from the perf_counter pair below).
        self.start_unix_ms = time.time() * 1000.0  # repolint: disable=span-discipline
        self.duration_ms = 0.0
        self.attributes: dict[str, Any] = {}
        self.events: list[dict[str, Any]] = []
        self._start_perf = time.perf_counter()
        self._tracer = tracer
        self._record = record

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        offset = (time.perf_counter() - self._start_perf) * 1000.0
        self.events.append({"name": name, "offset_ms": round(offset, 3), **attributes})

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_ms": self.start_unix_ms,
            "duration_ms": self.duration_ms,
            "attributes": self.attributes,
            "events": self.events,
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ms = (time.perf_counter() - self._start_perf) * 1000.0
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish_span(self)
        return False


class _TraceRecord:
    """Shared per-trace accumulator; appended to from several threads."""

    __slots__ = ("trace_id", "sampled", "remote", "parent_id", "spans", "lock")

    def __init__(
        self,
        trace_id: str,
        sampled: bool,
        *,
        remote: bool = False,
        parent_id: str | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.sampled = sampled
        #: Remote records adopt a context from the wire; their spans are
        #: returned to the caller instead of entering the ring buffer.
        self.remote = remote
        #: Span id on the far side of the wire that spawned this record.
        self.parent_id = parent_id
        self.spans: list[dict[str, Any]] = []
        self.lock = threading.Lock()

    def add(self, span_dict: dict[str, Any]) -> None:
        with self.lock:
            self.spans.append(span_dict)

    def extend(self, span_dicts: list[dict[str, Any]]) -> None:
        with self.lock:
            self.spans.extend(span_dicts)

    def to_dict(self) -> dict[str, Any]:
        with self.lock:
            spans = list(self.spans)
        return {"trace_id": self.trace_id, "spans": spans}


class _State(threading.local):
    """Per-thread trace binding: active record + open-span stack."""

    def __init__(self) -> None:
        self.record: _TraceRecord | None = None
        self.stack: list[Span] = []
        #: Parent span id for spans opened with an empty stack — ``None``
        #: for a locally-started root, the caller's span id for attached
        #: pool threads and wire-adopted contexts.
        self.base_parent: str | None = None
        #: True only on the thread that *began* the trace; that thread
        #: finalises the record when its outermost span closes.
        self.owns: bool = False


class Tracer:
    """Thread-safe tracer with sampling, a ring buffer and JSONL export."""

    def __init__(self, registry=None) -> None:
        self.registry = registry
        self.enabled = False
        self.sample_rate = 1.0
        self.export_path: str | None = None
        self._state = _State()
        self._lock = threading.Lock()
        self._export_lock = threading.Lock()
        self._trace_counter = 0
        self._active: dict[str, _TraceRecord] = {}
        self._finished: deque[_TraceRecord] = deque(maxlen=256)

    # -- configuration -----------------------------------------------------------

    def configure(
        self,
        *,
        enabled: bool = False,
        sample_rate: float = 1.0,
        trace_buffer: int = 256,
        export_path: str | None = None,
    ) -> None:
        """Reconfigure and reset: active traces and the ring buffer are dropped."""
        with self._lock:
            self.enabled = bool(enabled)
            self.sample_rate = float(sample_rate)
            self.export_path = export_path
            self._trace_counter = 0
            self._active = {}
            self._finished = deque(maxlen=max(1, int(trace_buffer)))

    # -- span lifecycle ----------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span under the current trace (starting one if needed).

        Returns :data:`NULL_SPAN` when tracing is disabled, so callers can
        unconditionally ``with tracer.span(...) as span:``.
        """
        if not self.enabled:
            return NULL_SPAN
        state = self._state
        record = state.record
        if record is None:
            record = self._begin_trace()
            state.record = record
            state.base_parent = None
            state.owns = True
        parent_id = state.stack[-1].span_id if state.stack else state.base_parent
        span = Span(name, record.trace_id, parent_id, self, record)
        if attributes:
            span.attributes.update(attributes)
        state.stack.append(span)
        return span

    def _finish_span(self, span: Span) -> None:
        state = self._state
        record: _TraceRecord = span._record
        if record.sampled:
            record.add(span.to_dict())
        if self.registry is not None:
            self.registry.observe_span(span.name, span.duration_ms)
        if state.stack and state.stack[-1] is span:
            state.stack.pop()
        if not state.stack and state.record is record:
            owns = state.owns
            state.record = None
            state.owns = False
            if owns and not record.remote:
                self._complete(record)

    def current_span(self):
        """The innermost open span on this thread (``NULL_SPAN`` if none)."""
        stack = self._state.stack
        return stack[-1] if stack else NULL_SPAN

    # -- trace lifecycle ---------------------------------------------------------

    def _begin_trace(self) -> _TraceRecord:
        with self._lock:
            self._trace_counter += 1
            count = self._trace_counter
        rate = self.sample_rate
        # Deterministic counter-based sampling: trace n is sampled when the
        # integer part of n*rate advances, giving exactly rate*N sampled
        # traces out of any N without per-trace randomness.
        sampled = rate >= 1.0 or (
            rate > 0.0 and int(count * rate) != int((count - 1) * rate)
        )
        record = _TraceRecord(_new_id(16), sampled)
        with self._lock:
            self._active[record.trace_id] = record
        return record

    def _complete(self, record: _TraceRecord) -> None:
        with self._lock:
            self._active.pop(record.trace_id, None)
            if record.sampled:
                self._finished.append(record)
        if record.sampled and self.export_path:
            line = json.dumps(record.to_dict(), sort_keys=True)
            with self._export_lock:
                with open(self.export_path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    # -- propagation -------------------------------------------------------------

    def current_context(self) -> dict[str, Any] | None:
        """The wire-safe ``TraceContext`` for the current thread, or ``None``."""
        if not self.enabled:
            return None
        state = self._state
        record = state.record
        if record is None:
            return None
        parent_id = state.stack[-1].span_id if state.stack else state.base_parent
        return {
            "trace_id": record.trace_id,
            "span_id": parent_id,
            "sampled": record.sampled,
        }

    @contextmanager
    def attach(self, context: dict[str, Any] | None) -> Iterator[None]:
        """Bind this thread to the (local, still-active) trace in ``context``.

        Used by thread pools: the submitting thread captures
        :meth:`current_context` and the pool thread attaches so its spans
        join the same trace record.  Safe to nest and to call on the
        originating thread itself (the scatter fast path); a no-op when
        tracing is off, ``context`` is ``None``, or the trace has already
        finished.
        """
        if not self.enabled or not context:
            yield
            return
        with self._lock:
            record = self._active.get(context.get("trace_id", ""))
        if record is None:
            yield
            return
        state = self._state
        saved = (state.record, state.stack, state.base_parent, state.owns)
        # Share the live record but start a fresh stack rooted at the
        # context's span id; attached threads never finalise the trace.
        state.record = record
        state.stack = []
        state.base_parent = context.get("span_id")
        state.owns = False
        try:
            yield
        finally:
            state.record, state.stack, state.base_parent, state.owns = saved

    @contextmanager
    def remote_trace(
        self, context: dict[str, Any] | None
    ) -> Iterator[_TraceRecord | None]:
        """Adopt a ``TraceContext`` that arrived over the wire.

        Yields a detached collector record: spans opened inside the block
        belong to the remote caller's trace (same trace id, parents rooted
        at the caller's span id) but accumulate locally so the transport
        can ship them back inside the reply.  Yields ``None`` when tracing
        is off or no context arrived.
        """
        if not self.enabled or not context:
            yield None
            return
        record = _TraceRecord(
            context.get("trace_id") or _new_id(16),
            bool(context.get("sampled", True)),
            remote=True,
            parent_id=context.get("span_id"),
        )
        state = self._state
        saved = (state.record, state.stack, state.base_parent, state.owns)
        state.record = record
        state.stack = []
        state.base_parent = record.parent_id
        state.owns = True
        try:
            yield record
        finally:
            state.record, state.stack, state.base_parent, state.owns = saved

    def ingest(self, spans: list[dict[str, Any]]) -> None:
        """Merge span dicts returned by a remote peer into the current trace."""
        if not self.enabled or not spans:
            return
        record = self._state.record
        if record is None or not record.sampled:
            return
        record.extend(spans)

    # -- inspection --------------------------------------------------------------

    def traces(self) -> list[dict[str, Any]]:
        """Completed traces, oldest first (bounded by ``trace_buffer``)."""
        with self._lock:
            records = list(self._finished)
        return [record.to_dict() for record in records]

    def get_trace(self, trace_id: str) -> dict[str, Any] | None:
        """One completed trace by id, or ``None`` if it has left the buffer."""
        with self._lock:
            for record in self._finished:
                if record.trace_id == trace_id:
                    return record.to_dict()
        return None

    def last_trace(self) -> dict[str, Any] | None:
        with self._lock:
            record = self._finished[-1] if self._finished else None
        return record.to_dict() if record is not None else None
