"""Exception hierarchy for the Kyrix reproduction.

Every error raised by the library derives from :class:`KyrixError` so that
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems: the storage engine, the mini SQL layer, the declarative
specification / compiler, the backend server and the frontend client.
"""

from __future__ import annotations


class KyrixError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Storage engine
# ---------------------------------------------------------------------------


class StorageError(KyrixError):
    """Base class for storage-engine failures."""


class SchemaError(StorageError):
    """A table schema is malformed or violated (unknown column, bad type)."""


class DuplicateTableError(StorageError):
    """An attempt was made to create a table that already exists."""


class UnknownTableError(StorageError):
    """A statement referenced a table that does not exist in the catalog."""


class DuplicateIndexError(StorageError):
    """An attempt was made to create an index whose name is already taken."""


class UnknownIndexError(StorageError):
    """An index name could not be resolved in the catalog."""


class DuplicateKeyError(StorageError):
    """A unique index rejected an insert because the key already exists."""


class RecordNotFoundError(StorageError):
    """A record id (rid) did not resolve to a live record."""


class PageError(StorageError):
    """A page could not be read, written or allocated."""


class TypeMismatchError(SchemaError):
    """A value's Python type does not match the declared column type."""


# ---------------------------------------------------------------------------
# Mini SQL layer
# ---------------------------------------------------------------------------


class SQLError(KyrixError):
    """Base class for SQL-layer failures."""


class SQLSyntaxError(SQLError):
    """The query text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SQLPlanError(SQLError):
    """The query is syntactically valid but cannot be planned
    (unknown table/column, unsupported construct)."""


class SQLExecutionError(SQLError):
    """A runtime failure while executing a planned query."""


# ---------------------------------------------------------------------------
# Declarative model and compiler
# ---------------------------------------------------------------------------


class SpecError(KyrixError):
    """Base class for errors in the declarative application specification."""


class ValidationError(SpecError):
    """The compiler's constraint checker rejected the specification.

    ``issues`` carries the full list of human-readable problems so that a
    developer can fix all of them in one pass.
    """

    def __init__(self, issues: list[str]) -> None:
        super().__init__("; ".join(issues) if issues else "invalid specification")
        self.issues = list(issues)


class CompileError(SpecError):
    """The specification passed validation but could not be compiled."""


# ---------------------------------------------------------------------------
# Backend server
# ---------------------------------------------------------------------------


class ServerError(KyrixError):
    """Base class for backend-server failures."""


class UnknownCanvasError(ServerError):
    """A request referenced a canvas id that is not part of the application."""


class UnknownLayerError(ServerError):
    """A request referenced a layer index that does not exist on the canvas."""


class FetchError(ServerError):
    """A data-fetch request could not be satisfied."""


class PrecomputeError(ServerError):
    """Placement precomputation / indexing failed."""


# ---------------------------------------------------------------------------
# Frontend client
# ---------------------------------------------------------------------------


class ClientError(KyrixError):
    """Base class for frontend failures."""


class JumpError(ClientError):
    """A jump was requested that is not defined from the current canvas."""


class ViewportError(ClientError):
    """A viewport move would place the viewport outside the canvas."""
