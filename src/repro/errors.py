"""Exception hierarchy for the Kyrix reproduction.

Every error raised by the library derives from :class:`KyrixError` so that
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems: the storage engine, the mini SQL layer, the declarative
specification / compiler, the backend server and the frontend client.
"""

from __future__ import annotations


class KyrixError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Storage engine
# ---------------------------------------------------------------------------


class StorageError(KyrixError):
    """Base class for storage-engine failures."""


class SchemaError(StorageError):
    """A table schema is malformed or violated (unknown column, bad type)."""


class DuplicateTableError(StorageError):
    """An attempt was made to create a table that already exists."""


class UnknownTableError(StorageError):
    """A statement referenced a table that does not exist in the catalog."""


class DuplicateIndexError(StorageError):
    """An attempt was made to create an index whose name is already taken."""


class UnknownIndexError(StorageError):
    """An index name could not be resolved in the catalog."""


class DuplicateKeyError(StorageError):
    """A unique index rejected an insert because the key already exists."""


class RecordNotFoundError(StorageError):
    """A record id (rid) did not resolve to a live record."""


class PageError(StorageError):
    """A page could not be read, written or allocated."""


class TypeMismatchError(SchemaError):
    """A value's Python type does not match the declared column type."""


# ---------------------------------------------------------------------------
# Mini SQL layer
# ---------------------------------------------------------------------------


class SQLError(KyrixError):
    """Base class for SQL-layer failures."""


class SQLSyntaxError(SQLError):
    """The query text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SQLPlanError(SQLError):
    """The query is syntactically valid but cannot be planned
    (unknown table/column, unsupported construct)."""


class SQLExecutionError(SQLError):
    """A runtime failure while executing a planned query."""


# ---------------------------------------------------------------------------
# Declarative model and compiler
# ---------------------------------------------------------------------------


class SpecError(KyrixError):
    """Base class for errors in the declarative application specification."""


class ValidationError(SpecError):
    """The compiler's constraint checker rejected the specification.

    ``issues`` carries the full list of human-readable problems so that a
    developer can fix all of them in one pass.
    """

    def __init__(self, issues: list[str]) -> None:
        super().__init__("; ".join(issues) if issues else "invalid specification")
        self.issues = list(issues)


class CompileError(SpecError):
    """The specification passed validation but could not be compiled."""


# ---------------------------------------------------------------------------
# Backend server
# ---------------------------------------------------------------------------


class ServerError(KyrixError):
    """Base class for backend-server failures."""


class UnknownCanvasError(ServerError):
    """A request referenced a canvas id that is not part of the application."""


class UnknownLayerError(ServerError):
    """A request referenced a layer index that does not exist on the canvas."""


class FetchError(ServerError):
    """A data-fetch request could not be satisfied."""


class PrecomputeError(ServerError):
    """Placement precomputation / indexing failed."""


class ReplicaTimeoutError(ServerError):
    """A replica answered, but only after the replica set's timeout budget.

    Raised by :class:`~repro.serving.replica.ReplicaService` when the
    (virtual) clock advanced past ``timeout_ms`` during one replica call;
    the slow response is discarded and the request fails over to the next
    healthy replica.
    """


class AllReplicasFailedError(ServerError):
    """Every attempted replica of a shard failed for one request.

    Raised by :class:`~repro.serving.replica.ReplicaService` only once the
    replica set is exhausted (or the configured retry limit is hit).
    ``causes`` maps each attempted replica index to the exception it raised,
    so operators can attribute the outage per replica.
    """

    def __init__(
        self, causes: dict[int, BaseException], attempts: int | None = None
    ) -> None:
        self.causes = dict(causes)
        self.attempts = attempts if attempts is not None else len(self.causes)
        detail = "; ".join(
            f"replica{index}: {type(error).__name__}: {error}"
            for index, error in sorted(self.causes.items())
        )
        super().__init__(
            f"all replicas failed after {self.attempts} attempt(s): "
            f"{detail or 'no replica was available to attempt'}"
        )


class WorkerError(ServerError):
    """Base class for shard-worker-process failures."""


class WorkerSpawnError(WorkerError):
    """A shard worker process failed to start (or to report ready in time)."""


class WorkerConnectionError(WorkerError):
    """The TCP connection to a shard worker failed (refused, reset, torn).

    Raised by :class:`~repro.net.socket_transport.SocketTransport` whenever a
    round-trip cannot complete at the socket level — the worker process is
    dead or unreachable, as opposed to the worker *answering* with an error.
    A replica set treats this as fatal for the replica and opens its circuit
    breaker immediately (a refused connection will not heal by retrying the
    very next request).
    """


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class ProtocolError(KyrixError):
    """A payload cannot cross the wire protocol losslessly.

    Raised when an encoder meets a value the codec has no representation
    for (e.g. a ``datetime`` column value in a JSON response), or when a
    decoder meets bytes that do not parse as the message they claim to be.
    Typed so callers can tell a protocol defect from a transport failure —
    silently coercing the value (the old ``default=str`` behaviour) would
    break the round-trip-is-lossless invariant without any error at all.
    """


# ---------------------------------------------------------------------------
# Socket framing
# ---------------------------------------------------------------------------


class FrameError(KyrixError):
    """Base class for length-prefixed frame codec failures."""


class FrameTooLargeError(FrameError):
    """A frame's declared (or encoded) size exceeds the codec's limit."""


class TruncatedFrameError(FrameError):
    """The stream ended mid-frame (inside a header or a payload)."""


class ProtocolViolationError(TruncatedFrameError):
    """The peer broke the one-frame-out/one-frame-back conversation.

    Raised by :func:`~repro.net.socket_transport.read_frame` when a peer
    sends *extra* frames for a single round-trip — a protocol violation by
    a live, chatty peer, not a stream that died mid-frame.  Subclasses
    :class:`TruncatedFrameError` for compatibility with callers that treat
    any framing failure as a desynchronised connection.
    """


# ---------------------------------------------------------------------------
# Frontend client
# ---------------------------------------------------------------------------


class ClientError(KyrixError):
    """Base class for frontend failures."""


class JumpError(ClientError):
    """A jump was requested that is not defined from the current canvas."""


class ViewportError(ClientError):
    """A viewport move would place the viewport outside the canvas."""
