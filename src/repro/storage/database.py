"""The database: a catalog of tables sharing one buffer pool.

This is the offline stand-in for the PostgreSQL instance in the paper's
architecture diagram.  The Kyrix backend server creates raw-data tables,
placement tables and tile-mapping tables here, builds indexes on them, and
answers viewport queries against them (directly through the access-path API
or through the :mod:`repro.minisql` layer).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..config import StorageConfig
from ..errors import DuplicateTableError, UnknownTableError
from ..metrics.timer import VirtualClock
from .pager import BufferPool, PagerStats
from .schema import Column, TableSchema
from .table import Table
from .types import ColumnType


class Database:
    """An embedded, in-process database holding named tables."""

    def __init__(
        self,
        config: StorageConfig | None = None,
        *,
        clock: VirtualClock | None = None,
    ) -> None:
        self.config = config or StorageConfig()
        self.config.validate()
        self.clock = clock or VirtualClock()
        self._pool = BufferPool.from_config(self.config, clock=self.clock)
        self._tables: dict[str, Table] = {}

    # -- catalog ------------------------------------------------------------------

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, str | ColumnType]] | TableSchema,
    ) -> Table:
        """Create a table from ``[(column, type), ...]`` pairs or a schema."""
        key = name.lower()
        if key in self._tables:
            raise DuplicateTableError(f"table {name!r} already exists")
        if isinstance(columns, TableSchema):
            schema = TableSchema(name=key, columns=list(columns.columns))
        else:
            schema = TableSchema.build(key, columns)
        table = Table(schema, self._pool)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise UnknownTableError(f"no table named {name!r}")
        del self._tables[key]

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise UnknownTableError(f"no table named {name!r}")
        return self._tables[key]

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    # -- convenience loaders ---------------------------------------------------------

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-load positional rows into an existing table."""
        return self.table(name).bulk_load(rows)

    def create_and_load(
        self,
        name: str,
        columns: Sequence[tuple[str, str | ColumnType]],
        rows: Iterable[Sequence[Any]],
    ) -> Table:
        """Create a table and bulk-load it in one call."""
        table = self.create_table(name, columns)
        table.bulk_load(rows)
        return table

    # -- engine-level accounting -------------------------------------------------------

    @property
    def pager_stats(self) -> PagerStats:
        return self._pool.stats

    def simulated_time_ms(self) -> float:
        """Total simulated I/O latency charged so far."""
        return self.clock.now_ms

    def flush(self) -> None:
        """Flush the buffer pool (write back all dirty pages)."""
        self._pool.flush()

    def describe(self) -> dict[str, dict[str, Any]]:
        """Return a catalog summary: per table, its columns, row count and indexes."""
        description: dict[str, dict[str, Any]] = {}
        for name, table in sorted(self._tables.items()):
            description[name] = {
                "columns": [(c.name, c.type.value) for c in table.schema.columns],
                "rows": table.row_count,
                "indexes": {
                    info.name: {"column": info.column, "kind": info.kind}
                    for info in table.indexes.values()
                },
            }
        return description
