"""Row (record) binary codec and record identifiers.

Records are serialised into a compact binary form so that the heap file can
store them on fixed-size pages, just like a conventional slotted-page DBMS.
A :class:`RecordId` names a record by ``(page_no, slot_no)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from .schema import TableSchema
from .types import decode_value, encode_value


@dataclass(frozen=True, order=True)
class RecordId:
    """Physical address of a record: page number and slot within the page."""

    page_no: int
    slot_no: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordId(page={self.page_no}, slot={self.slot_no})"


def encode_row(row: Sequence[Any], schema: TableSchema) -> bytes:
    """Serialise an already-coerced row into bytes according to ``schema``."""
    parts = [
        encode_value(value, column.type)
        for value, column in zip(row, schema.columns)
    ]
    return b"".join(parts)


def decode_row(buffer: bytes, schema: TableSchema) -> tuple[Any, ...]:
    """Deserialise a row previously produced by :func:`encode_row`."""
    values: list[Any] = []
    offset = 0
    for column in schema.columns:
        value, offset = decode_value(buffer, offset, column.type)
        values.append(value)
    return tuple(values)


def row_size(row: Sequence[Any], schema: TableSchema) -> int:
    """Return the encoded size of ``row`` in bytes (used for page packing)."""
    return len(encode_row(row, schema))
