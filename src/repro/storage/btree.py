"""An in-memory B+tree index mapping keys to record ids.

This is the index the paper's *tuple–tile mapping* database design uses:
a B-tree on the ``tuple_id`` column of the record table and on the
``tile_id`` column of the mapping table.  Keys are arbitrary orderable
Python values (integers and strings in practice); duplicates are allowed
(each key maps to a list of record ids) unless the index is declared unique.

The implementation is a textbook B+tree: internal nodes hold separator keys
and child pointers, leaves hold ``(key, [rid, ...])`` pairs and are chained
left-to-right so that range scans are a linked-list walk.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from ..errors import DuplicateKeyError, StorageError
from .row import RecordId

DEFAULT_ORDER = 64


class _Node:
    """Base class for B+tree nodes."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[Any] = []

    @property
    def is_leaf(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class _LeafNode(_Node):
    __slots__ = ("values", "next_leaf")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[list[RecordId]] = []
        self.next_leaf: _LeafNode | None = None

    @property
    def is_leaf(self) -> bool:
        return True


class _InternalNode(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BTreeIndex:
    """A B+tree index over a single key column.

    Parameters
    ----------
    name:
        Index name (used in the catalog and error messages).
    order:
        Maximum number of keys per node; nodes split when they exceed it.
    unique:
        When true, inserting a duplicate key raises
        :class:`~repro.errors.DuplicateKeyError`.
    """

    kind = "btree"

    def __init__(self, name: str, *, order: int = DEFAULT_ORDER, unique: bool = False) -> None:
        if order < 4:
            raise StorageError(f"btree order must be >= 4, got {order}")
        self.name = name
        self.order = order
        self.unique = unique
        self._root: _Node = _LeafNode()
        self._count = 0
        self.lookups = 0
        self.inserts = 0

    def __len__(self) -> int:
        """Number of (key, rid) entries stored."""
        return self._count

    # -- internal helpers -----------------------------------------------------

    def _find_leaf(self, key: Any) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            internal = node  # type: ignore[assignment]
            position = bisect.bisect_right(internal.keys, key)
            node = internal.children[position]
        return node  # type: ignore[return-value]

    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def _split_leaf(self, leaf: _LeafNode) -> tuple[Any, _LeafNode]:
        middle = len(leaf.keys) // 2
        sibling = _LeafNode()
        sibling.keys = leaf.keys[middle:]
        sibling.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        sibling.next_leaf = leaf.next_leaf
        leaf.next_leaf = sibling
        return sibling.keys[0], sibling

    def _split_internal(self, node: _InternalNode) -> tuple[Any, _InternalNode]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        sibling = _InternalNode()
        sibling.keys = node.keys[middle + 1 :]
        sibling.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, sibling

    def _insert_recursive(
        self, node: _Node, key: Any, rid: RecordId
    ) -> tuple[Any, _Node] | None:
        """Insert and return a ``(separator, new_sibling)`` pair on split."""
        if node.is_leaf:
            leaf: _LeafNode = node  # type: ignore[assignment]
            position = bisect.bisect_left(leaf.keys, key)
            if position < len(leaf.keys) and leaf.keys[position] == key:
                if self.unique:
                    raise DuplicateKeyError(
                        f"index {self.name!r}: duplicate key {key!r}"
                    )
                leaf.values[position].append(rid)
            else:
                leaf.keys.insert(position, key)
                leaf.values.insert(position, [rid])
            if len(leaf.keys) > self.order:
                return self._split_leaf(leaf)
            return None

        internal: _InternalNode = node  # type: ignore[assignment]
        position = bisect.bisect_right(internal.keys, key)
        split = self._insert_recursive(internal.children[position], key, rid)
        if split is None:
            return None
        separator, sibling = split
        internal.keys.insert(position, separator)
        internal.children.insert(position + 1, sibling)
        if len(internal.keys) > self.order:
            return self._split_internal(internal)
        return None

    # -- public API -------------------------------------------------------------

    def insert(self, key: Any, rid: RecordId) -> None:
        """Insert one ``key -> rid`` entry."""
        if key is None:
            raise StorageError(f"index {self.name!r}: cannot index NULL keys")
        self.inserts += 1
        split = self._insert_recursive(self._root, key, rid)
        if split is not None:
            separator, sibling = split
            new_root = _InternalNode()
            new_root.keys = [separator]
            new_root.children = [self._root, sibling]
            self._root = new_root
        self._count += 1

    def delete(self, key: Any, rid: RecordId) -> bool:
        """Remove one ``key -> rid`` entry.  Returns False when absent.

        Nodes are not rebalanced on delete; for the read-mostly workloads of
        Kyrix precomputation this keeps the structure simple without
        affecting lookup correctness.
        """
        leaf = self._find_leaf(key)
        position = bisect.bisect_left(leaf.keys, key)
        if position >= len(leaf.keys) or leaf.keys[position] != key:
            return False
        rids = leaf.values[position]
        if rid not in rids:
            return False
        rids.remove(rid)
        if not rids:
            leaf.keys.pop(position)
            leaf.values.pop(position)
        self._count -= 1
        return True

    def search(self, key: Any) -> list[RecordId]:
        """Return every rid stored under ``key`` (empty list when absent)."""
        self.lookups += 1
        leaf = self._find_leaf(key)
        position = bisect.bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return list(leaf.values[position])
        return []

    def search_many(self, keys: Sequence[Any]) -> list[RecordId]:
        """Union of :meth:`search` over several keys, preserving key order."""
        results: list[RecordId] = []
        for key in keys:
            results.extend(self.search(key))
        return results

    def range_search(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, RecordId]]:
        """Yield ``(key, rid)`` pairs with ``low <= key <= high`` in key order.

        ``None`` bounds are unbounded on that side.
        """
        self.lookups += 1
        if low is None:
            leaf: _LeafNode | None = self._leftmost_leaf()
            position = 0
        else:
            leaf = self._find_leaf(low)
            position = (
                bisect.bisect_left(leaf.keys, low)
                if include_low
                else bisect.bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            while position < len(leaf.keys):
                key = leaf.keys[position]
                if high is not None:
                    if include_high and key > high:
                        return
                    if not include_high and key >= high:
                        return
                for rid in leaf.values[position]:
                    yield key, rid
                position += 1
            leaf = leaf.next_leaf
            position = 0

    def items(self) -> Iterator[tuple[Any, RecordId]]:
        """Yield every ``(key, rid)`` entry in key order."""
        return self.range_search()

    def keys(self) -> Iterator[Any]:
        """Yield distinct keys in order."""
        leaf: _LeafNode | None = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next_leaf

    def height(self) -> int:
        """Tree height (1 for a single leaf)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            height += 1
        return height

    def validate(self) -> None:
        """Check structural invariants; raises :class:`StorageError` on breakage.

        Used by property-based tests: keys within each node are sorted,
        leaves are chained in non-decreasing key order, and entry counts add
        up.
        """
        counted = 0
        previous_key: Any = None
        leaf: _LeafNode | None = self._leftmost_leaf()
        while leaf is not None:
            if leaf.keys != sorted(leaf.keys):
                raise StorageError(f"index {self.name!r}: leaf keys out of order")
            for key, rids in zip(leaf.keys, leaf.values):
                if previous_key is not None and key < previous_key:
                    raise StorageError(
                        f"index {self.name!r}: leaf chain out of order"
                    )
                if not rids:
                    raise StorageError(
                        f"index {self.name!r}: empty rid list for key {key!r}"
                    )
                previous_key = key
                counted += len(rids)
            leaf = leaf.next_leaf
        if counted != self._count:
            raise StorageError(
                f"index {self.name!r}: entry count mismatch "
                f"({counted} found, {self._count} recorded)"
            )
