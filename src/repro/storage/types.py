"""Column types supported by the embedded storage engine.

The engine supports the small set of types Kyrix needs for placement tables
and raw-data tables: 64-bit integers, double-precision floats, UTF-8 strings
and axis-aligned bounding boxes (the ``bbox`` column of the paper's spatial
database design).
"""

from __future__ import annotations

import enum
import struct
from typing import Any

from ..errors import TypeMismatchError


class ColumnType(enum.Enum):
    """Enumeration of supported column types."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BBOX = "bbox"

    @classmethod
    def parse(cls, name: str) -> "ColumnType":
        """Resolve a type from its SQL-ish name (case-insensitive).

        Accepts a few common aliases (``int``, ``bigint``, ``double``,
        ``real``, ``varchar``, ``string``) so that mini-SQL ``CREATE TABLE``
        statements read naturally.
        """
        normalized = name.strip().lower()
        aliases = {
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "float": cls.FLOAT,
            "double": cls.FLOAT,
            "real": cls.FLOAT,
            "numeric": cls.FLOAT,
            "text": cls.TEXT,
            "varchar": cls.TEXT,
            "string": cls.TEXT,
            "bbox": cls.BBOX,
            "box": cls.BBOX,
        }
        if normalized not in aliases:
            raise TypeMismatchError(f"unknown column type: {name!r}")
        return aliases[normalized]


#: Python types acceptable for each column type when inserting.
_ACCEPTED_PYTHON_TYPES: dict[ColumnType, tuple[type, ...]] = {
    ColumnType.INTEGER: (int,),
    ColumnType.FLOAT: (int, float),
    ColumnType.TEXT: (str,),
    ColumnType.BBOX: (tuple, list),
}


def coerce_value(value: Any, column_type: ColumnType, column_name: str = "?") -> Any:
    """Validate ``value`` against ``column_type`` and return the stored form.

    ``None`` is allowed for every type (SQL NULL).  Integers are accepted for
    FLOAT columns and widened; bbox values are normalised to a 4-tuple of
    floats ``(xmin, ymin, xmax, ymax)``.
    """
    if value is None:
        return None
    accepted = _ACCEPTED_PYTHON_TYPES[column_type]
    if isinstance(value, bool) or not isinstance(value, accepted):
        raise TypeMismatchError(
            f"column {column_name!r} expects {column_type.value}, "
            f"got {type(value).__name__}: {value!r}"
        )
    if column_type is ColumnType.INTEGER:
        return int(value)
    if column_type is ColumnType.FLOAT:
        return float(value)
    if column_type is ColumnType.TEXT:
        return str(value)
    # BBOX
    if len(value) != 4:
        raise TypeMismatchError(
            f"column {column_name!r} expects a 4-element bbox, got {value!r}"
        )
    xmin, ymin, xmax, ymax = (float(v) for v in value)
    if xmin > xmax or ymin > ymax:
        raise TypeMismatchError(
            f"column {column_name!r}: bbox has min > max: {value!r}"
        )
    return (xmin, ymin, xmax, ymax)


# ---------------------------------------------------------------------------
# Binary encoding of single values (used by the row codec)
# ---------------------------------------------------------------------------

_NULL_TAG = 0
_PRESENT_TAG = 1


def encode_value(value: Any, column_type: ColumnType) -> bytes:
    """Serialise one (already coerced) value to bytes."""
    if value is None:
        return struct.pack("<B", _NULL_TAG)
    header = struct.pack("<B", _PRESENT_TAG)
    if column_type is ColumnType.INTEGER:
        return header + struct.pack("<q", value)
    if column_type is ColumnType.FLOAT:
        return header + struct.pack("<d", value)
    if column_type is ColumnType.TEXT:
        raw = value.encode("utf-8")
        return header + struct.pack("<I", len(raw)) + raw
    # BBOX
    return header + struct.pack("<4d", *value)


def decode_value(buffer: bytes, offset: int, column_type: ColumnType) -> tuple[Any, int]:
    """Deserialise one value, returning ``(value, next_offset)``."""
    (tag,) = struct.unpack_from("<B", buffer, offset)
    offset += 1
    if tag == _NULL_TAG:
        return None, offset
    if column_type is ColumnType.INTEGER:
        (value,) = struct.unpack_from("<q", buffer, offset)
        return value, offset + 8
    if column_type is ColumnType.FLOAT:
        (value,) = struct.unpack_from("<d", buffer, offset)
        return value, offset + 8
    if column_type is ColumnType.TEXT:
        (length,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        raw = buffer[offset : offset + length]
        return raw.decode("utf-8"), offset + length
    # BBOX
    values = struct.unpack_from("<4d", buffer, offset)
    return tuple(values), offset + 32
