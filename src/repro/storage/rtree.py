"""An R-tree spatial index over axis-aligned bounding boxes.

This is the substitute for PostgreSQL's GiST index in the paper's second
database design: every tuple stores a ``bbox`` column and "queries that
request tuples whose bounding boxes intersect with a given rectangle should
run fast".  Both the dynamic-box fetcher and the spatial static-tile fetcher
issue exactly such intersection queries.

Two construction paths are provided:

* incremental :meth:`RTreeIndex.insert` with quadratic node splitting
  (Guttman's classic algorithm), and
* :meth:`RTreeIndex.bulk_load`, a Sort-Tile-Recursive (STR) packing bulk
  loader that builds a well-filled tree orders of magnitude faster — this is
  what the backend indexer uses when precomputing placement tables for large
  layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from ..errors import StorageError
from .row import RecordId

DEFAULT_MAX_ENTRIES = 32


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise StorageError(f"degenerate rectangle: {self}")

    # -- geometry ----------------------------------------------------------

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles share any point (boundaries count)."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth required to cover ``other``."""
        return self.union(other).area - self.area

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.xmin + dx, self.ymin + dy, self.xmax + dx, self.ymax + dy)

    def scaled(self, factor: float) -> "Rect":
        """Scale about the center by ``factor`` (>1 grows, <1 shrinks)."""
        if factor <= 0:
            raise StorageError(f"scale factor must be positive, got {factor}")
        cx, cy = self.center
        half_w = self.width * factor / 2.0
        half_h = self.height * factor / 2.0
        return Rect(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    @classmethod
    def from_tuple(cls, values: Sequence[float]) -> "Rect":
        if len(values) != 4:
            raise StorageError(f"bbox must have 4 values, got {values!r}")
        return cls(float(values[0]), float(values[1]), float(values[2]), float(values[3]))

    @classmethod
    def from_point(cls, x: float, y: float, half_extent: float = 0.0) -> "Rect":
        return cls(x - half_extent, y - half_extent, x + half_extent, y + half_extent)


class _RNode:
    """An R-tree node; leaves store ``(Rect, RecordId)`` entries, internal
    nodes store ``(Rect, child_node)`` entries."""

    __slots__ = ("is_leaf", "entries", "mbr")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[tuple[Rect, Any]] = []
        self.mbr: Rect | None = None

    def recompute_mbr(self) -> None:
        if not self.entries:
            self.mbr = None
            return
        mbr = self.entries[0][0]
        for rect, _ in self.entries[1:]:
            mbr = mbr.union(rect)
        self.mbr = mbr


class RTreeIndex:
    """An R-tree over ``(bbox, rid)`` entries supporting intersection search."""

    kind = "rtree"

    def __init__(
        self,
        name: str,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_fill: float = 0.4,
    ) -> None:
        if max_entries < 4:
            raise StorageError(f"rtree max_entries must be >= 4, got {max_entries}")
        if not 0.0 < min_fill <= 0.5:
            raise StorageError(f"rtree min_fill must be in (0, 0.5], got {min_fill}")
        self.name = name
        self.max_entries = max_entries
        self.min_entries = max(1, int(math.floor(max_entries * min_fill)))
        self._root = _RNode(is_leaf=True)
        self._count = 0
        self.lookups = 0
        self.inserts = 0
        self.nodes_visited = 0

    def __len__(self) -> int:
        return self._count

    # -- incremental insertion (Guttman quadratic split) ------------------------

    def insert(self, rect: Rect | Sequence[float], rid: RecordId) -> None:
        """Insert one ``bbox -> rid`` entry."""
        if not isinstance(rect, Rect):
            rect = Rect.from_tuple(rect)
        self.inserts += 1
        split = self._insert_recursive(self._root, rect, rid)
        if split is not None:
            old_root = self._root
            new_root = _RNode(is_leaf=False)
            new_root.entries = [
                (old_root.mbr, old_root),  # type: ignore[list-item]
                (split.mbr, split),  # type: ignore[list-item]
            ]
            new_root.recompute_mbr()
            self._root = new_root
        self._count += 1

    def _insert_recursive(self, node: _RNode, rect: Rect, rid: RecordId) -> _RNode | None:
        if node.is_leaf:
            node.entries.append((rect, rid))
            node.mbr = rect if node.mbr is None else node.mbr.union(rect)
            if len(node.entries) > self.max_entries:
                return self._split_node(node)
            return None
        best_index = self._choose_subtree(node, rect)
        child_rect, child = node.entries[best_index]
        split = self._insert_recursive(child, rect, rid)
        node.entries[best_index] = (child.mbr, child)  # type: ignore[list-item]
        if split is not None:
            node.entries.append((split.mbr, split))  # type: ignore[list-item]
        node.mbr = rect if node.mbr is None else node.mbr.union(rect)
        if len(node.entries) > self.max_entries:
            return self._split_node(node)
        return None

    def _choose_subtree(self, node: _RNode, rect: Rect) -> int:
        best_index = 0
        best_enlargement = math.inf
        best_area = math.inf
        for index, (child_rect, _) in enumerate(node.entries):
            enlargement = child_rect.enlargement(rect)
            area = child_rect.area
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_index = index
                best_enlargement = enlargement
                best_area = area
        return best_index

    def _split_node(self, node: _RNode) -> _RNode:
        """Quadratic split: pick the two entries wasting the most area as
        seeds, distribute the rest by minimum enlargement."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a][0]
        mbr_b = entries[seed_b][0]
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        for entry in remaining:
            rect = entry[0]
            # Force assignment when one group must take everything left to
            # reach minimum fill.
            if len(group_a) + 1 < self.min_entries and len(group_b) >= self.min_entries:
                group_a.append(entry)
                mbr_a = mbr_a.union(rect)
                continue
            if len(group_b) + 1 < self.min_entries and len(group_a) >= self.min_entries:
                group_b.append(entry)
                mbr_b = mbr_b.union(rect)
                continue
            growth_a = mbr_a.enlargement(rect)
            growth_b = mbr_b.enlargement(rect)
            if growth_a < growth_b or (growth_a == growth_b and mbr_a.area <= mbr_b.area):
                group_a.append(entry)
                mbr_a = mbr_a.union(rect)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(rect)

        node.entries = group_a
        node.recompute_mbr()
        sibling = _RNode(is_leaf=node.is_leaf)
        sibling.entries = group_b
        sibling.recompute_mbr()
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[tuple[Rect, Any]]) -> tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = -math.inf
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                rect_i, rect_j = entries[i][0], entries[j][0]
                waste = rect_i.union(rect_j).area - rect_i.area - rect_j.area
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    # -- bulk loading (Sort-Tile-Recursive) --------------------------------------

    def bulk_load(self, entries: Iterable[tuple[Rect | Sequence[float], RecordId]]) -> None:
        """Replace the tree contents with an STR-packed tree over ``entries``.

        Far faster than repeated :meth:`insert` for large layers; this is the
        path the backend indexer uses during precomputation.
        """
        normalized: list[tuple[Rect, RecordId]] = []
        for rect, rid in entries:
            if not isinstance(rect, Rect):
                rect = Rect.from_tuple(rect)
            normalized.append((rect, rid))
        self._count = len(normalized)
        self.inserts += len(normalized)
        if not normalized:
            self._root = _RNode(is_leaf=True)
            return

        # Build packed leaves.
        leaves = self._str_pack_leaves(normalized)
        # Recursively pack internal levels until a single root remains.
        level: list[_RNode] = leaves
        while len(level) > 1:
            level = self._pack_internal_level(level)
        self._root = level[0]

    def _str_pack_leaves(self, entries: list[tuple[Rect, RecordId]]) -> list[_RNode]:
        capacity = self.max_entries
        total = len(entries)
        leaf_count = math.ceil(total / capacity)
        slice_count = math.ceil(math.sqrt(leaf_count))
        entries_sorted = sorted(entries, key=lambda e: e[0].center[0])
        slice_size = math.ceil(total / slice_count)
        leaves: list[_RNode] = []
        for start in range(0, total, slice_size):
            vertical_slice = sorted(
                entries_sorted[start : start + slice_size],
                key=lambda e: e[0].center[1],
            )
            for leaf_start in range(0, len(vertical_slice), capacity):
                node = _RNode(is_leaf=True)
                node.entries = list(vertical_slice[leaf_start : leaf_start + capacity])
                node.recompute_mbr()
                leaves.append(node)
        return leaves

    def _pack_internal_level(self, children: list[_RNode]) -> list[_RNode]:
        capacity = self.max_entries
        total = len(children)
        node_count = math.ceil(total / capacity)
        slice_count = math.ceil(math.sqrt(node_count))
        children_sorted = sorted(children, key=lambda n: n.mbr.center[0])  # type: ignore[union-attr]
        slice_size = math.ceil(total / slice_count)
        parents: list[_RNode] = []
        for start in range(0, total, slice_size):
            vertical_slice = sorted(
                children_sorted[start : start + slice_size],
                key=lambda n: n.mbr.center[1],  # type: ignore[union-attr]
            )
            for node_start in range(0, len(vertical_slice), capacity):
                parent = _RNode(is_leaf=False)
                parent.entries = [
                    (child.mbr, child)  # type: ignore[list-item]
                    for child in vertical_slice[node_start : node_start + capacity]
                ]
                parent.recompute_mbr()
                parents.append(parent)
        return parents

    # -- queries ---------------------------------------------------------------

    def search(self, query: Rect | Sequence[float]) -> list[RecordId]:
        """Return the rids of every entry whose bbox intersects ``query``."""
        if not isinstance(query, Rect):
            query = Rect.from_tuple(query)
        self.lookups += 1
        results: list[RecordId] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            if node.mbr is None or not node.mbr.intersects(query):
                continue
            if node.is_leaf:
                for rect, rid in node.entries:
                    if rect.intersects(query):
                        results.append(rid)
            else:
                for rect, child in node.entries:
                    if rect.intersects(query):
                        stack.append(child)
        return results

    def search_entries(self, query: Rect | Sequence[float]) -> list[tuple[Rect, RecordId]]:
        """Like :meth:`search` but also returns each entry's bbox."""
        if not isinstance(query, Rect):
            query = Rect.from_tuple(query)
        self.lookups += 1
        results: list[tuple[Rect, RecordId]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            if node.mbr is None or not node.mbr.intersects(query):
                continue
            if node.is_leaf:
                for rect, rid in node.entries:
                    if rect.intersects(query):
                        results.append((rect, rid))
            else:
                for rect, child in node.entries:
                    if rect.intersects(query):
                        stack.append(child)
        return results

    def delete(self, rect: Rect | Sequence[float], rid: RecordId) -> bool:
        """Remove one entry (exact bbox + rid match).  Returns False if absent."""
        if not isinstance(rect, Rect):
            rect = Rect.from_tuple(rect)
        found = self._delete_recursive(self._root, rect, rid)
        if found:
            self._count -= 1
        return found

    def _delete_recursive(self, node: _RNode, rect: Rect, rid: RecordId) -> bool:
        if node.mbr is None or not node.mbr.intersects(rect):
            return False
        if node.is_leaf:
            for index, (entry_rect, entry_rid) in enumerate(node.entries):
                if entry_rid == rid and entry_rect == rect:
                    node.entries.pop(index)
                    node.recompute_mbr()
                    return True
            return False
        for index, (child_rect, child) in enumerate(node.entries):
            if child_rect.intersects(rect) and self._delete_recursive(child, rect, rid):
                node.entries[index] = (child.mbr if child.mbr else child_rect, child)
                node.recompute_mbr()
                return True
        return False

    def all_entries(self) -> Iterator[tuple[Rect, RecordId]]:
        """Yield every ``(bbox, rid)`` entry."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(child for _, child in node.entries)

    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0][1]
            height += 1
        return height

    def validate(self) -> None:
        """Check MBR containment invariants and entry counts."""
        counted = self._validate_node(self._root)
        if counted != self._count:
            raise StorageError(
                f"index {self.name!r}: entry count mismatch "
                f"({counted} found, {self._count} recorded)"
            )

    def _validate_node(self, node: _RNode) -> int:
        if node.mbr is None:
            if node.entries:
                raise StorageError(f"index {self.name!r}: node has entries but no MBR")
            return 0
        if node.is_leaf:
            for rect, _ in node.entries:
                if not node.mbr.contains(rect):
                    raise StorageError(
                        f"index {self.name!r}: leaf MBR does not contain entry"
                    )
            return len(node.entries)
        counted = 0
        for rect, child in node.entries:
            if child.mbr is None or not rect.contains(child.mbr):
                raise StorageError(
                    f"index {self.name!r}: child MBR not contained in parent entry"
                )
            if not node.mbr.contains(rect):
                raise StorageError(
                    f"index {self.name!r}: node MBR does not contain child rect"
                )
            counted += self._validate_node(child)
        return counted
