"""Page store and buffer pool with optional simulated disk latency.

The embedded engine keeps every page in a Python-level "disk" (a dict of
``bytearray`` pages owned by :class:`PageStore`) and accesses them through a
:class:`BufferPool` with LRU eviction.  When
:class:`~repro.config.StorageConfig.simulate_io` is enabled, every buffer-pool
miss charges read/write latency to a :class:`~repro.metrics.timer.VirtualClock`,
which lets the benchmark harness model a disk-resident DBMS without actually
touching the filesystem.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..config import StorageConfig
from ..errors import PageError
from ..metrics.timer import VirtualClock


@dataclass
class PagerStats:
    """Counters describing buffer-pool behaviour."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    allocations: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageStore:
    """The "disk": a growable collection of fixed-size pages."""

    def __init__(self, page_size: int) -> None:
        if page_size < 512:
            raise PageError(f"page size too small: {page_size}")
        self.page_size = page_size
        self._pages: dict[int, bytes] = {}
        self._next_page_no = 0

    def __len__(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        """Allocate a new zeroed page and return its page number."""
        page_no = self._next_page_no
        self._next_page_no += 1
        self._pages[page_no] = bytes(self.page_size)
        return page_no

    def read(self, page_no: int) -> bytes:
        if page_no not in self._pages:
            raise PageError(f"page {page_no} does not exist")
        return self._pages[page_no]

    def write(self, page_no: int, data: bytes) -> None:
        if page_no not in self._pages:
            raise PageError(f"page {page_no} does not exist")
        if len(data) != self.page_size:
            raise PageError(
                f"page {page_no}: payload is {len(data)} bytes, "
                f"expected {self.page_size}"
            )
        self._pages[page_no] = bytes(data)


class BufferPool:
    """An LRU buffer pool in front of a :class:`PageStore`.

    Pages checked out for modification must be marked dirty via
    :meth:`mark_dirty`; dirty pages are written back on eviction or
    :meth:`flush`.
    """

    def __init__(
        self,
        store: PageStore,
        capacity_pages: int,
        *,
        simulate_io: bool = False,
        page_read_ms: float = 0.05,
        page_write_ms: float = 0.08,
        clock: VirtualClock | None = None,
    ) -> None:
        if capacity_pages < 1:
            raise PageError("buffer pool capacity must be at least one page")
        self._store = store
        self._capacity = capacity_pages
        self._simulate_io = simulate_io
        self._page_read_ms = page_read_ms
        self._page_write_ms = page_write_ms
        self.clock = clock or VirtualClock()
        self.stats = PagerStats()
        # page_no -> mutable page image; OrderedDict gives us LRU ordering.
        self._frames: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()

    @property
    def page_size(self) -> int:
        return self._store.page_size

    @property
    def capacity(self) -> int:
        return self._capacity

    def __contains__(self, page_no: int) -> bool:
        return page_no in self._frames

    # -- internal helpers ----------------------------------------------------

    def _charge_read(self) -> None:
        if self._simulate_io:
            self.clock.advance(self._page_read_ms)

    def _charge_write(self) -> None:
        if self._simulate_io:
            self.clock.advance(self._page_write_ms)

    def _evict_if_needed(self) -> None:
        while len(self._frames) > self._capacity:
            victim_no, victim = self._frames.popitem(last=False)
            self.stats.evictions += 1
            if victim_no in self._dirty:
                self._store.write(victim_no, bytes(victim))
                self._dirty.discard(victim_no)
                self._charge_write()
                self.stats.writes += 1

    # -- public API -----------------------------------------------------------

    def allocate_page(self) -> int:
        """Allocate a fresh page and pin it in the pool (clean)."""
        page_no = self._store.allocate()
        self.stats.allocations += 1
        self._frames[page_no] = bytearray(self._store.page_size)
        self._frames.move_to_end(page_no)
        self._evict_if_needed()
        return page_no

    def get_page(self, page_no: int) -> bytearray:
        """Return the (mutable) in-memory image of a page, fetching on miss."""
        if page_no in self._frames:
            self.stats.hits += 1
            self._frames.move_to_end(page_no)
            return self._frames[page_no]
        self.stats.misses += 1
        self.stats.reads += 1
        self._charge_read()
        frame = bytearray(self._store.read(page_no))
        self._frames[page_no] = frame
        self._frames.move_to_end(page_no)
        self._evict_if_needed()
        return frame

    def mark_dirty(self, page_no: int) -> None:
        """Record that the cached image of ``page_no`` was modified."""
        if page_no not in self._frames:
            raise PageError(f"page {page_no} is not resident in the buffer pool")
        self._dirty.add(page_no)

    def flush(self) -> None:
        """Write every dirty resident page back to the store."""
        for page_no in sorted(self._dirty):
            if page_no in self._frames:
                self._store.write(page_no, bytes(self._frames[page_no]))
                self._charge_write()
                self.stats.writes += 1
        self._dirty.clear()

    def clear(self) -> None:
        """Flush and drop every resident page (cold-cache restart)."""
        self.flush()
        self._frames.clear()

    @classmethod
    def from_config(
        cls, config: StorageConfig, clock: VirtualClock | None = None
    ) -> "BufferPool":
        """Build a store + pool pair from a :class:`StorageConfig`."""
        store = PageStore(config.page_size)
        return cls(
            store,
            config.buffer_pool_pages,
            simulate_io=config.simulate_io,
            page_read_ms=config.page_read_ms,
            page_write_ms=config.page_write_ms,
            clock=clock,
        )
