"""Slotted-page heap file storing variable-length records.

Each heap page has the classic slotted layout::

    +--------+-----------------------+----------------------+
    | header | slot directory (grows | record payloads      |
    |        | downward from header) | (grow upward from    |
    |        |                       |  the end of the page)|
    +--------+-----------------------+----------------------+

Header: ``<H`` slot_count, ``<H`` free_space_offset.
Each slot: ``<H`` offset, ``<H`` length; a length of 0 marks a deleted slot.

Records are addressed by :class:`~repro.storage.row.RecordId` and never span
pages, so the maximum record size is bounded by the page size.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Sequence

from ..errors import PageError, RecordNotFoundError
from .pager import BufferPool
from .row import RecordId, decode_row, encode_row
from .schema import TableSchema

_HEADER = struct.Struct("<HH")  # slot_count, free_space_offset
_SLOT = struct.Struct("<HH")  # record offset, record length


class HeapFile:
    """A collection of slotted pages holding one table's records."""

    def __init__(self, pool: BufferPool, schema: TableSchema) -> None:
        self._pool = pool
        self._schema = schema
        self._page_nos: list[int] = []
        self._record_count = 0

    # -- page-format helpers ---------------------------------------------------

    def _init_page(self, page: bytearray) -> None:
        _HEADER.pack_into(page, 0, 0, self._pool.page_size)

    def _page_header(self, page: bytearray) -> tuple[int, int]:
        return _HEADER.unpack_from(page, 0)

    def _slot(self, page: bytearray, slot_no: int) -> tuple[int, int]:
        return _SLOT.unpack_from(page, _HEADER.size + slot_no * _SLOT.size)

    def _set_slot(self, page: bytearray, slot_no: int, offset: int, length: int) -> None:
        _SLOT.pack_into(page, _HEADER.size + slot_no * _SLOT.size, offset, length)

    def _free_space(self, page: bytearray) -> int:
        slot_count, free_offset = self._page_header(page)
        directory_end = _HEADER.size + slot_count * _SLOT.size
        return free_offset - directory_end

    # -- public API -------------------------------------------------------------

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def page_count(self) -> int:
        return len(self._page_nos)

    def __len__(self) -> int:
        return self._record_count

    def insert(self, row: Sequence[Any]) -> RecordId:
        """Append an (already coerced) row; returns its :class:`RecordId`."""
        payload = encode_row(row, self._schema)
        needed = len(payload) + _SLOT.size
        max_payload = self._pool.page_size - _HEADER.size - _SLOT.size
        if len(payload) > max_payload:
            raise PageError(
                f"record of {len(payload)} bytes exceeds page capacity "
                f"({max_payload} bytes)"
            )
        page_no, page = self._find_page_with_space(needed)
        slot_count, free_offset = self._page_header(page)
        record_offset = free_offset - len(payload)
        page[record_offset:free_offset] = payload
        self._set_slot(page, slot_count, record_offset, len(payload))
        _HEADER.pack_into(page, 0, slot_count + 1, record_offset)
        self._pool.mark_dirty(page_no)
        self._record_count += 1
        return RecordId(page_no=page_no, slot_no=slot_count)

    def _find_page_with_space(self, needed: int) -> tuple[int, bytearray]:
        # Appending workloads dominate (bulk loads), so only the last page is
        # checked before allocating a new one.
        if self._page_nos:
            last_no = self._page_nos[-1]
            page = self._pool.get_page(last_no)
            if self._free_space(page) >= needed:
                return last_no, page
        page_no = self._pool.allocate_page()
        page = self._pool.get_page(page_no)
        self._init_page(page)
        self._pool.mark_dirty(page_no)
        self._page_nos.append(page_no)
        return page_no, page

    def fetch(self, rid: RecordId) -> tuple[Any, ...]:
        """Return the row stored at ``rid``."""
        if rid.page_no not in set(self._page_nos):
            raise RecordNotFoundError(f"no such page in heap file: {rid}")
        page = self._pool.get_page(rid.page_no)
        slot_count, _ = self._page_header(page)
        if rid.slot_no >= slot_count:
            raise RecordNotFoundError(f"slot out of range: {rid}")
        offset, length = self._slot(page, rid.slot_no)
        if length == 0:
            raise RecordNotFoundError(f"record was deleted: {rid}")
        return decode_row(bytes(page[offset : offset + length]), self._schema)

    def delete(self, rid: RecordId) -> None:
        """Tombstone the record at ``rid`` (space is not reclaimed)."""
        page = self._pool.get_page(rid.page_no)
        slot_count, _ = self._page_header(page)
        if rid.page_no not in set(self._page_nos) or rid.slot_no >= slot_count:
            raise RecordNotFoundError(f"cannot delete missing record: {rid}")
        offset, length = self._slot(page, rid.slot_no)
        if length == 0:
            raise RecordNotFoundError(f"record already deleted: {rid}")
        self._set_slot(page, rid.slot_no, offset, 0)
        self._pool.mark_dirty(rid.page_no)
        self._record_count -= 1

    def update(self, rid: RecordId, row: Sequence[Any]) -> RecordId:
        """Replace the record at ``rid``; may move it to a new rid."""
        payload = encode_row(row, self._schema)
        page = self._pool.get_page(rid.page_no)
        offset, length = self._slot(page, rid.slot_no)
        if length == 0:
            raise RecordNotFoundError(f"cannot update deleted record: {rid}")
        if len(payload) <= length:
            page[offset : offset + len(payload)] = payload
            self._set_slot(page, rid.slot_no, offset, len(payload))
            self._pool.mark_dirty(rid.page_no)
            return rid
        self.delete(rid)
        return self.insert(row)

    def scan(self) -> Iterator[tuple[RecordId, tuple[Any, ...]]]:
        """Yield every live record as ``(rid, row)`` in physical order."""
        for page_no in self._page_nos:
            page = self._pool.get_page(page_no)
            slot_count, _ = self._page_header(page)
            for slot_no in range(slot_count):
                offset, length = self._slot(page, slot_no)
                if length == 0:
                    continue
                row = decode_row(bytes(page[offset : offset + length]), self._schema)
                yield RecordId(page_no=page_no, slot_no=slot_no), row

    def scan_rows(self) -> Iterator[tuple[Any, ...]]:
        """Yield every live record without its rid."""
        for _, row in self.scan():
            yield row
