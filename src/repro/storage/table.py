"""A table: heap file storage plus its secondary indexes.

The table keeps every index (B-tree, hash or R-tree) synchronised with the
heap on insert / delete / update, and exposes the access paths the mini-SQL
executor and the Kyrix backend use: full scans, key-index lookups and
spatial-intersection lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from ..errors import (
    DuplicateIndexError,
    SchemaError,
    StorageError,
    UnknownIndexError,
)
from .btree import BTreeIndex
from .hashindex import HashIndex
from .heapfile import HeapFile
from .pager import BufferPool
from .row import RecordId
from .rtree import Rect, RTreeIndex
from .schema import TableSchema
from .statistics import TableStats

#: Union of the index implementations a table may carry.
AnyIndex = BTreeIndex | HashIndex | RTreeIndex


@dataclass
class IndexInfo:
    """Catalog entry describing one index on a table."""

    name: str
    column: str
    kind: str  # "btree" | "hash" | "rtree"
    unique: bool
    index: AnyIndex


class Table:
    """A named table with a schema, a heap file and secondary indexes."""

    def __init__(self, schema: TableSchema, pool: BufferPool) -> None:
        self.schema = schema
        self._heap = HeapFile(pool, schema)
        self._indexes: dict[str, IndexInfo] = {}
        self._stats: TableStats | None = None

    # -- basic properties --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def row_count(self) -> int:
        return len(self._heap)

    @property
    def indexes(self) -> dict[str, IndexInfo]:
        return dict(self._indexes)

    # -- index management ----------------------------------------------------------

    def create_index(
        self,
        name: str,
        column: str,
        kind: str = "btree",
        *,
        unique: bool = False,
    ) -> IndexInfo:
        """Create an index on ``column`` and backfill it from existing rows.

        ``kind`` is one of ``"btree"``, ``"hash"`` or ``"rtree"``.  R-tree
        indexes require a BBOX column.
        """
        if name in self._indexes:
            raise DuplicateIndexError(f"index {name!r} already exists on {self.name!r}")
        if not self.schema.has_column(column):
            raise SchemaError(f"table {self.name!r} has no column {column!r}")
        column = column.lower()
        if kind == "btree":
            index: AnyIndex = BTreeIndex(name, unique=unique)
        elif kind == "hash":
            index = HashIndex(name, unique=unique)
        elif kind == "rtree":
            index = RTreeIndex(name)
        else:
            raise StorageError(f"unknown index kind: {kind!r}")
        info = IndexInfo(name=name, column=column, kind=kind, unique=unique, index=index)
        self._backfill_index(info)
        self._indexes[name] = info
        return info

    def _backfill_index(self, info: IndexInfo) -> None:
        column_pos = self.schema.column_index(info.column)
        if info.kind == "rtree":
            entries = []
            for rid, row in self._heap.scan():
                value = row[column_pos]
                if value is not None:
                    entries.append((Rect.from_tuple(value), rid))
            info.index.bulk_load(entries)  # type: ignore[union-attr]
            return
        for rid, row in self._heap.scan():
            value = row[column_pos]
            if value is not None:
                info.index.insert(value, rid)

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise UnknownIndexError(f"no index named {name!r} on table {self.name!r}")
        del self._indexes[name]

    def get_index(self, name: str) -> IndexInfo:
        if name not in self._indexes:
            raise UnknownIndexError(f"no index named {name!r} on table {self.name!r}")
        return self._indexes[name]

    def find_index_on(self, column: str, kinds: Sequence[str] = ("btree", "hash", "rtree")) -> IndexInfo | None:
        """Return an index on ``column`` of one of the given kinds, or None."""
        column = column.lower()
        for info in self._indexes.values():
            if info.column == column and info.kind in kinds:
                return info
        return None

    # -- data modification ------------------------------------------------------------

    def insert(self, values: Sequence[Any] | dict[str, Any]) -> RecordId:
        """Insert one row (positional sequence or column mapping)."""
        if isinstance(values, dict):
            row = self.schema.coerce_mapping(values)
        else:
            row = self.schema.coerce_row(values)
        rid = self._heap.insert(row)
        for info in self._indexes.values():
            value = row[self.schema.column_index(info.column)]
            if value is None:
                continue
            if info.kind == "rtree":
                info.index.insert(Rect.from_tuple(value), rid)  # type: ignore[arg-type]
            else:
                info.index.insert(value, rid)
        self._stats = None
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any] | dict[str, Any]]) -> list[RecordId]:
        """Insert many rows; returns the rids in insertion order."""
        return [self.insert(row) for row in rows]

    def bulk_load(self, rows: Iterable[Sequence[Any]]) -> int:
        """Fast-path load of positional rows with deferred index maintenance.

        All rows are appended to the heap first; every index is then rebuilt
        in one pass (using the R-tree STR bulk loader where applicable).
        Returns the number of rows loaded.
        """
        count = 0
        for values in rows:
            row = self.schema.coerce_row(values)
            self._heap.insert(row)
            count += 1
        for info in self._indexes.values():
            if info.kind == "rtree":
                info.index = RTreeIndex(info.name)
            elif info.kind == "hash":
                info.index = HashIndex(info.name, unique=info.unique)
            else:
                info.index = BTreeIndex(info.name, unique=info.unique)
            self._backfill_index(info)
        self._stats = None
        return count

    def delete(self, rid: RecordId) -> None:
        """Delete the row at ``rid`` and unhook it from every index."""
        row = self._heap.fetch(rid)
        for info in self._indexes.values():
            value = row[self.schema.column_index(info.column)]
            if value is None:
                continue
            if info.kind == "rtree":
                info.index.delete(Rect.from_tuple(value), rid)  # type: ignore[arg-type]
            else:
                info.index.delete(value, rid)
        self._heap.delete(rid)
        self._stats = None

    def update(self, rid: RecordId, changes: dict[str, Any]) -> RecordId:
        """Update the row at ``rid`` with ``{column: new_value}`` changes."""
        current = self.schema.row_to_dict(self._heap.fetch(rid))
        current.update(changes)
        new_row = self.schema.coerce_mapping(current)
        self.delete(rid)
        new_rid = self._heap.insert(new_row)
        for info in self._indexes.values():
            value = new_row[self.schema.column_index(info.column)]
            if value is None:
                continue
            if info.kind == "rtree":
                info.index.insert(Rect.from_tuple(value), new_rid)  # type: ignore[arg-type]
            else:
                info.index.insert(value, new_rid)
        self._stats = None
        return new_rid

    # -- access paths ------------------------------------------------------------------

    def fetch(self, rid: RecordId) -> tuple[Any, ...]:
        """Return the row stored at ``rid``."""
        return self._heap.fetch(rid)

    def fetch_dict(self, rid: RecordId) -> dict[str, Any]:
        return self.schema.row_to_dict(self._heap.fetch(rid))

    def fetch_many(self, rids: Sequence[RecordId]) -> list[tuple[Any, ...]]:
        return [self._heap.fetch(rid) for rid in rids]

    def scan(self) -> Iterator[tuple[RecordId, tuple[Any, ...]]]:
        """Full scan yielding ``(rid, row)``."""
        return self._heap.scan()

    def scan_rows(self) -> Iterator[tuple[Any, ...]]:
        return self._heap.scan_rows()

    def lookup_key(self, column: str, key: Any) -> list[tuple[RecordId, tuple[Any, ...]]]:
        """Equality lookup, via an index when available, otherwise a scan."""
        info = self.find_index_on(column, kinds=("btree", "hash"))
        if info is not None:
            rids = info.index.search(key)  # type: ignore[union-attr]
            return [(rid, self._heap.fetch(rid)) for rid in rids]
        position = self.schema.column_index(column)
        return [(rid, row) for rid, row in self._heap.scan() if row[position] == key]

    def lookup_keys(self, column: str, keys: Sequence[Any]) -> list[tuple[RecordId, tuple[Any, ...]]]:
        """Equality lookup for several keys (IN-list)."""
        info = self.find_index_on(column, kinds=("btree", "hash"))
        if info is not None:
            rids = info.index.search_many(list(keys))  # type: ignore[union-attr]
            return [(rid, self._heap.fetch(rid)) for rid in rids]
        wanted = set(keys)
        position = self.schema.column_index(column)
        return [(rid, row) for rid, row in self._heap.scan() if row[position] in wanted]

    def spatial_search(self, column: str, query: Rect) -> list[tuple[RecordId, tuple[Any, ...]]]:
        """Bbox-intersection lookup, via an R-tree when available."""
        info = self.find_index_on(column, kinds=("rtree",))
        if info is not None:
            rids = info.index.search(query)  # type: ignore[union-attr]
            return [(rid, self._heap.fetch(rid)) for rid in rids]
        position = self.schema.column_index(column)
        results = []
        for rid, row in self._heap.scan():
            value = row[position]
            if value is not None and Rect.from_tuple(value).intersects(query):
                results.append((rid, row))
        return results

    # -- statistics ------------------------------------------------------------------

    def statistics(self, *, refresh: bool = False) -> TableStats:
        """Return (possibly cached) table statistics."""
        if self._stats is None or refresh:
            stats = TableStats.empty(self.schema)
            for _, row in self._heap.scan():
                stats.observe_row(self.schema, row)
            self._stats = stats
        return self._stats
