"""Per-table statistics used by the mini-SQL planner and the benchmark report.

The statistics are deliberately simple — row counts, per-column min/max and
distinct-value estimates — which is enough for the planner to choose between
a full scan, a key-index lookup and a spatial-index probe, and for the
benchmark harness to report dataset characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .schema import TableSchema
from .types import ColumnType


@dataclass
class ColumnStats:
    """Statistics for a single column."""

    name: str
    non_null_count: int = 0
    null_count: int = 0
    min_value: Any = None
    max_value: Any = None
    approx_distinct: int = 0

    def observe(self, value: Any) -> None:
        if value is None:
            self.null_count += 1
            return
        self.non_null_count += 1
        comparable = value if not isinstance(value, (tuple, list)) else tuple(value)
        if self.min_value is None or comparable < self.min_value:
            self.min_value = comparable
        if self.max_value is None or comparable > self.max_value:
            self.max_value = comparable


@dataclass
class TableStats:
    """Statistics for a whole table."""

    table_name: str
    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @classmethod
    def empty(cls, schema: TableSchema) -> "TableStats":
        return cls(
            table_name=schema.name,
            columns={c.name: ColumnStats(name=c.name) for c in schema.columns},
        )

    def observe_row(self, schema: TableSchema, row: tuple[Any, ...]) -> None:
        self.row_count += 1
        for column, value in zip(schema.columns, row):
            self.columns[column.name].observe(value)

    def selectivity_estimate(self, column: str, schema: TableSchema) -> float:
        """Crude equality-selectivity estimate for ``column``.

        Returns the expected fraction of rows matching one key.  Used by the
        planner to prefer an index lookup over a scan.
        """
        stats = self.columns.get(column)
        if stats is None or self.row_count == 0 or stats.non_null_count == 0:
            return 1.0
        column_type = schema.column(column).type
        if column_type is ColumnType.INTEGER and stats.min_value is not None:
            spread = int(stats.max_value) - int(stats.min_value) + 1
            return 1.0 / max(1, min(spread, self.row_count))
        return 1.0 / max(1, self.row_count)


def compute_stats(schema: TableSchema, rows: list[tuple[Any, ...]]) -> TableStats:
    """Build :class:`TableStats` by scanning ``rows`` once."""
    stats = TableStats.empty(schema)
    for row in rows:
        stats.observe_row(schema, row)
    return stats
