"""Per-table statistics used by the mini-SQL planner and the benchmark report.

The statistics are deliberately simple — row counts, per-column min/max and
distinct-value estimates — which is enough for the planner to choose between
a full scan, a key-index lookup and a spatial-index probe, and for the
benchmark harness to report dataset characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .schema import TableSchema
from .types import ColumnType


@dataclass
class ColumnStats:
    """Statistics for a single column."""

    name: str
    non_null_count: int = 0
    null_count: int = 0
    min_value: Any = None
    max_value: Any = None
    approx_distinct: int = 0

    def observe(self, value: Any) -> None:
        if value is None:
            self.null_count += 1
            return
        self.non_null_count += 1
        comparable = value if not isinstance(value, (tuple, list)) else tuple(value)
        if self.min_value is None or comparable < self.min_value:
            self.min_value = comparable
        if self.max_value is None or comparable > self.max_value:
            self.max_value = comparable


@dataclass
class TableStats:
    """Statistics for a whole table."""

    table_name: str
    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @classmethod
    def empty(cls, schema: TableSchema) -> "TableStats":
        return cls(
            table_name=schema.name,
            columns={c.name: ColumnStats(name=c.name) for c in schema.columns},
        )

    def observe_row(self, schema: TableSchema, row: tuple[Any, ...]) -> None:
        self.row_count += 1
        for column, value in zip(schema.columns, row):
            self.columns[column.name].observe(value)

    def selectivity_estimate(self, column: str, schema: TableSchema) -> float:
        """Crude equality-selectivity estimate for ``column``.

        Returns the expected fraction of rows matching one key.  Used by the
        planner to prefer an index lookup over a scan.
        """
        stats = self.columns.get(column)
        if stats is None or self.row_count == 0 or stats.non_null_count == 0:
            return 1.0
        column_type = schema.column(column).type
        if column_type is ColumnType.INTEGER and stats.min_value is not None:
            spread = int(stats.max_value) - int(stats.min_value) + 1
            return 1.0 / max(1, min(spread, self.row_count))
        return 1.0 / max(1, self.row_count)


def compute_stats(schema: TableSchema, rows: list[tuple[Any, ...]]) -> TableStats:
    """Build :class:`TableStats` by scanning ``rows`` once."""
    stats = TableStats.empty(schema)
    for row in rows:
        stats.observe_row(schema, row)
    return stats


@dataclass
class SpatialDistribution:
    """A sampled distribution of object centres on one canvas.

    The cluster partitioner's balanced-KD strategy consumes this: it needs
    where the mass of a canvas's objects actually sits, not just row counts,
    to place shard boundaries so each shard serves a similar load.  Samples
    from several tables (the layers of one canvas) can be merged with
    :meth:`extend`.
    """

    points: list[tuple[float, float]] = field(default_factory=list)
    #: How many rows were scanned to produce the sample (>= len(points)).
    observed_rows: int = 0

    def observe(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def extend(self, other: "SpatialDistribution") -> None:
        self.points.extend(other.points)
        self.observed_rows += other.observed_rows

    def __len__(self) -> int:
        return len(self.points)


def sample_spatial_distribution(
    rows: "Any",
    bbox_position: int,
    *,
    sample_limit: int = 50_000,
    row_count_hint: int | None = None,
) -> SpatialDistribution:
    """Sample bbox centres from an iterable of positional rows.

    ``rows`` yields storage tuples with a bbox at ``bbox_position``; at most
    ``sample_limit`` centres are kept, taken at a uniform stride when
    ``row_count_hint`` says the table is larger than the limit.
    """
    stride = 1
    if row_count_hint and row_count_hint > sample_limit:
        # Ceiling division: a floor stride of 1 would sample a prefix of the
        # table instead of spanning it, biasing the KD splits.
        stride = -(-row_count_hint // sample_limit)
    distribution = SpatialDistribution()
    for index, row in enumerate(rows):
        distribution.observed_rows += 1
        if index % stride:
            continue
        bbox = row[bbox_position]
        if bbox is None:
            continue
        xmin, ymin, xmax, ymax = bbox
        distribution.observe((xmin + xmax) / 2.0, (ymin + ymax) / 2.0)
        if len(distribution) >= sample_limit:
            break
    return distribution
