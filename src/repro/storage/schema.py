"""Table schemas for the embedded storage engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import SchemaError
from .types import ColumnType, coerce_value


@dataclass(frozen=True)
class Column:
    """A single column: a name and a :class:`ColumnType`."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if not isinstance(self.type, ColumnType):
            raise SchemaError(f"column {self.name!r}: type must be a ColumnType")


@dataclass
class TableSchema:
    """An ordered set of named, typed columns.

    Column names are case-insensitive and stored lower-cased, mirroring how
    PostgreSQL folds unquoted identifiers.
    """

    name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        normalized: list[Column] = []
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(
                    f"table {self.name!r}: duplicate column {column.name!r}"
                )
            seen.add(lowered)
            normalized.append(Column(lowered, column.type))
        self.columns = normalized
        self._index_by_name = {c.name: i for i, c in enumerate(self.columns)}

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(cls, name: str, column_specs: Sequence[tuple[str, str | ColumnType]]) -> "TableSchema":
        """Build a schema from ``[(name, type_name), ...]`` pairs."""
        columns = []
        for col_name, col_type in column_specs:
            resolved = (
                col_type
                if isinstance(col_type, ColumnType)
                else ColumnType.parse(col_type)
            )
            columns.append(Column(col_name, resolved))
        return cls(name=name, columns=columns)

    # -- lookups -------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_by_name

    def column_index(self, name: str) -> int:
        """Return the ordinal position of a column."""
        lowered = name.lower()
        if lowered not in self._index_by_name:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return self._index_by_name[lowered]

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    # -- row validation -------------------------------------------------------

    def coerce_row(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate and coerce a positional row against this schema."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return tuple(
            coerce_value(value, column.type, column.name)
            for value, column in zip(values, self.columns)
        )

    def coerce_mapping(self, mapping: dict[str, Any]) -> tuple[Any, ...]:
        """Validate and coerce a ``{column: value}`` mapping; missing columns
        become NULL."""
        unknown = [k for k in mapping if not self.has_column(k)]
        if unknown:
            raise SchemaError(
                f"table {self.name!r} has no column(s): {', '.join(sorted(unknown))}"
            )
        row = [mapping.get(column.name) for column in self.columns]
        return self.coerce_row(row)

    def row_to_dict(self, row: Sequence[Any]) -> dict[str, Any]:
        """Pair a positional row with column names."""
        return {column.name: value for column, value in zip(self.columns, row)}

    # -- schema evolution ------------------------------------------------------

    def with_column(self, column: Column) -> "TableSchema":
        """Return a new schema with ``column`` appended."""
        return TableSchema(name=self.name, columns=[*self.columns, column])

    def project(self, names: Iterable[str]) -> "TableSchema":
        """Return a schema containing only the named columns, in the given order."""
        return TableSchema(
            name=self.name, columns=[self.column(name) for name in names]
        )
