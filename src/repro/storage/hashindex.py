"""A hash index mapping equality keys to record ids.

The paper's first database design builds "Btree/hash indexes on the tuple_id
column of the first table and the tile_id column of the second table"; this
module provides the hash variant.  It supports only equality lookups, which
is exactly what tile-id and tuple-id joins need.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from ..errors import DuplicateKeyError, StorageError
from .row import RecordId


class HashIndex:
    """An equality-only index backed by a Python dict of rid lists."""

    kind = "hash"

    def __init__(self, name: str, *, unique: bool = False) -> None:
        self.name = name
        self.unique = unique
        self._buckets: dict[Any, list[RecordId]] = {}
        self._count = 0
        self.lookups = 0
        self.inserts = 0

    def __len__(self) -> int:
        """Number of (key, rid) entries stored."""
        return self._count

    def insert(self, key: Any, rid: RecordId) -> None:
        """Insert one ``key -> rid`` entry."""
        if key is None:
            raise StorageError(f"index {self.name!r}: cannot index NULL keys")
        self.inserts += 1
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [rid]
        else:
            if self.unique:
                raise DuplicateKeyError(f"index {self.name!r}: duplicate key {key!r}")
            bucket.append(rid)
        self._count += 1

    def delete(self, key: Any, rid: RecordId) -> bool:
        """Remove one ``key -> rid`` entry.  Returns False when absent."""
        bucket = self._buckets.get(key)
        if not bucket or rid not in bucket:
            return False
        bucket.remove(rid)
        if not bucket:
            del self._buckets[key]
        self._count -= 1
        return True

    def search(self, key: Any) -> list[RecordId]:
        """Return every rid stored under ``key`` (empty list when absent)."""
        self.lookups += 1
        return list(self._buckets.get(key, ()))

    def search_many(self, keys: Sequence[Any]) -> list[RecordId]:
        """Union of :meth:`search` over several keys, preserving key order."""
        results: list[RecordId] = []
        for key in keys:
            results.extend(self.search(key))
        return results

    def items(self) -> Iterator[tuple[Any, RecordId]]:
        """Yield every ``(key, rid)`` entry (unordered across keys)."""
        for key, rids in self._buckets.items():
            for rid in rids:
                yield key, rid

    def keys(self) -> Iterator[Any]:
        """Yield distinct keys (unordered)."""
        return iter(self._buckets.keys())

    def validate(self) -> None:
        """Check that entry counts add up and no bucket is empty."""
        counted = 0
        for key, rids in self._buckets.items():
            if not rids:
                raise StorageError(
                    f"index {self.name!r}: empty bucket for key {key!r}"
                )
            counted += len(rids)
        if counted != self._count:
            raise StorageError(
                f"index {self.name!r}: entry count mismatch "
                f"({counted} found, {self._count} recorded)"
            )
