"""Embedded storage engine: the reproduction's stand-in for PostgreSQL.

The engine provides everything the Kyrix backend needs from its backing
DBMS:

* slotted-page heap files behind an LRU buffer pool with an optional
  simulated-disk latency model (:mod:`repro.storage.pager`,
  :mod:`repro.storage.heapfile`),
* B-tree and hash indexes for the tuple–tile mapping database design
  (:mod:`repro.storage.btree`, :mod:`repro.storage.hashindex`),
* an R-tree spatial index for the bbox database design used by dynamic
  boxes and spatial static tiles (:mod:`repro.storage.rtree`),
* a table/catalog layer tying them together (:mod:`repro.storage.table`,
  :mod:`repro.storage.database`).
"""

from .btree import BTreeIndex
from .database import Database
from .hashindex import HashIndex
from .heapfile import HeapFile
from .pager import BufferPool, PageStore, PagerStats
from .row import RecordId, decode_row, encode_row
from .rtree import Rect, RTreeIndex
from .schema import Column, TableSchema
from .statistics import ColumnStats, TableStats, compute_stats
from .table import IndexInfo, Table
from .types import ColumnType, coerce_value

__all__ = [
    "BTreeIndex",
    "BufferPool",
    "Column",
    "ColumnStats",
    "ColumnType",
    "Database",
    "HashIndex",
    "HeapFile",
    "IndexInfo",
    "PageStore",
    "PagerStats",
    "RecordId",
    "Rect",
    "RTreeIndex",
    "Table",
    "TableSchema",
    "TableStats",
    "coerce_value",
    "compute_stats",
    "decode_row",
    "encode_row",
]
