"""The Kyrix frontend.

"The frontend renderer is responsible for listening to users' activities,
communicating with the backend server to fetch data and rendering the
visualizations."  :class:`KyrixFrontend` plays that role: it tracks the
current canvas and viewport, translates pans and jumps into
:class:`~repro.net.protocol.DataRequest` objects according to the active
fetching scheme, consults the frontend cache, talks to the backend over the
simulated link, optionally prefetches ahead of the user, and (optionally)
rasterises what comes back.

Every interaction returns a :class:`~repro.metrics.collector.LatencyBreakdown`
so callers — the examples and the benchmark harness — can report the paper's
headline metric, average response time per interaction.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any

from ..compiler.plan import LayerPlan
from ..config import KyrixConfig
from ..core.jump import Jump, JumpType
from ..core.viewport import Viewport
from ..errors import JumpError, UnknownCanvasError
from ..metrics.collector import LatencyBreakdown, MetricsCollector
from ..metrics.timer import Timer
from ..net.link import SimulatedLink
from ..net.protocol import DataRequest, DataResponse
from ..server.cache import LRUCache
from ..server.dbox import DynamicBoxState
from ..server.prefetch import Prefetcher, make_prefetcher
from ..server.schemes import FetchScheme, dbox_scheme
from ..server.tile import TileScheme
from .renderer import RasterRenderer

if TYPE_CHECKING:
    from ..serving.base import DataService


def _warn_on_hand_built_endpoint(service: "DataService") -> None:
    """Deprecation gate: bare ``KyrixBackend``/``ClusterRouter`` endpoints
    must come out of :func:`repro.serving.build_service` (which marks what
    it returns); hand-constructed ones get one release of warnings."""
    from ..cluster.router import ClusterRouter
    from ..server.backend import KyrixBackend
    from ..serving.factory import is_factory_built

    if isinstance(service, (KyrixBackend, ClusterRouter)) and not is_factory_built(
        service
    ):
        warnings.warn(
            f"passing a hand-constructed {type(service).__name__} as a frontend "
            "endpoint is deprecated; build the serving stack with "
            "repro.serving.build_service",
            DeprecationWarning,
            stacklevel=3,
        )


class KyrixFrontend:
    """A headless frontend driving one Kyrix application.

    ``service`` is any :class:`~repro.serving.base.DataService` — the
    composed stack returned by :func:`repro.serving.build_service`, a bare
    :class:`~repro.server.backend.KyrixBackend`, a sharded
    :class:`~repro.cluster.router.ClusterRouter`, or a
    :class:`~repro.serving.transport.RemoteBackendStub` talking to a remote
    deployment; the frontend only uses the protocol surface (``handle()``,
    ``compiled``, ``config``).
    """

    def __init__(
        self,
        service: "DataService",
        scheme: FetchScheme | None = None,
        *,
        config: KyrixConfig | None = None,
        link: SimulatedLink | None = None,
        prefetcher: Prefetcher | None = None,
        render: bool = False,
    ) -> None:
        _warn_on_hand_built_endpoint(service)
        self.service = service
        self.scheme = scheme or dbox_scheme()
        self.config = config or service.config
        self.link = link or SimulatedLink(self.config.network)
        cache_entries = (
            self.config.cache.frontend_entries if self.config.cache.enabled else 0
        )
        self.cache: LRUCache[DataResponse] = LRUCache(cache_entries)
        self.metrics = MetricsCollector()
        if prefetcher is None and self.config.prefetch.enabled:
            prefetcher = make_prefetcher(
                self.config.prefetch.strategy,
                history_window=self.config.prefetch.history_window,
            )
        self.prefetcher = prefetcher
        self.renderer = (
            RasterRenderer(self.config.viewport_width, self.config.viewport_height)
            if render
            else None
        )

        self.current_canvas_id: str | None = None
        self.viewport: Viewport | None = None
        self._dbox_states: dict[int, DynamicBoxState] = {}
        #: Objects currently visible, per layer index (for jump hit-testing).
        self.visible_objects: dict[int, list[dict[str, Any]]] = {}

    # -- application lifecycle ---------------------------------------------------------

    @property
    def backend(self) -> "DataService":
        """Deprecated alias of :attr:`service` (kept for one release)."""
        warnings.warn(
            "KyrixFrontend.backend is deprecated; use KyrixFrontend.service",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.service

    def load_initial_canvas(self) -> LatencyBreakdown:
        """Load the application's initial canvas at its initial viewport."""
        spec = self._spec()
        viewport = spec.initial_viewport()
        return self.load_canvas(spec.initial_canvas_id, viewport)

    def load_canvas(self, canvas_id: str, viewport: Viewport) -> LatencyBreakdown:
        """Switch to ``canvas_id`` with ``viewport`` and fetch its data."""
        if canvas_id not in self.service.compiled.canvases:
            raise UnknownCanvasError(f"no canvas {canvas_id!r}")
        plan = self.service.compiled.canvas_plan(canvas_id)
        self.current_canvas_id = canvas_id
        self.viewport = viewport.clamped_to(plan.width, plan.height)
        self._dbox_states = {}
        if self.prefetcher is not None:
            self.prefetcher.reset()
            self.prefetcher.observe(self.viewport)
        return self._fetch_current_viewport()

    # -- interactions --------------------------------------------------------------------

    def pan_to(self, x: float, y: float) -> LatencyBreakdown:
        """Pan so the viewport's top-left corner is at ``(x, y)``."""
        viewport = self._require_viewport().moved_to(x, y)
        return self._pan(viewport)

    def pan_by(self, dx: float, dy: float) -> LatencyBreakdown:
        """Pan by a canvas-space offset."""
        viewport = self._require_viewport().panned(dx, dy)
        return self._pan(viewport)

    def _pan(self, viewport: Viewport) -> LatencyBreakdown:
        plan = self.service.compiled.canvas_plan(self._require_canvas())
        self.viewport = viewport.clamped_to(plan.width, plan.height)
        if self.prefetcher is not None:
            self.prefetcher.observe(self.viewport)
        breakdown = self._fetch_current_viewport()
        self._run_prefetch()
        return breakdown

    def jump(self, jump: Jump, row: dict[str, Any] | None = None) -> LatencyBreakdown:
        """Take ``jump`` (optionally triggered by clicking ``row``)."""
        if jump.source != self.current_canvas_id:
            raise JumpError(
                f"jump source {jump.source!r} is not the current canvas "
                f"{self.current_canvas_id!r}"
            )
        destination_plan = self.service.compiled.canvas_plan(jump.destination)
        center = jump.destination_viewport_center(row or {})
        viewport = self._require_viewport()
        if center is None:
            center = (destination_plan.width / 2.0, destination_plan.height / 2.0)
        new_viewport = viewport.centered_at(*center)
        return self.load_canvas(jump.destination, new_viewport)

    def click(self, row: dict[str, Any], layer_index: int = 0) -> LatencyBreakdown:
        """Click an object: take the first jump whose selector accepts it."""
        spec = self._spec()
        for jump in spec.jumps_from(self._require_canvas()):
            if jump.triggered_by(row, layer_index):
                return self.jump(jump, row)
        raise JumpError(
            f"no jump from canvas {self.current_canvas_id!r} accepts the clicked object"
        )

    def available_jumps(self, row: dict[str, Any], layer_index: int = 0) -> list[tuple[Jump, str]]:
        """The jumps (and their labels) available for a clicked object."""
        spec = self._spec()
        return [
            (jump, jump.label_for(row))
            for jump in spec.jumps_from(self._require_canvas())
            if jump.triggered_by(row, layer_index)
        ]

    # -- data fetching ------------------------------------------------------------------------

    def _fetch_current_viewport(self) -> LatencyBreakdown:
        """Fetch (and optionally render) every dynamic layer for the viewport."""
        canvas_id = self._require_canvas()
        viewport = self._require_viewport()
        plan = self.service.compiled.canvas_plan(canvas_id)
        breakdown = LatencyBreakdown(cache_hit=True)
        self.visible_objects = {}

        if self.renderer is not None:
            self.renderer.clear()

        for layer_plan in plan.dynamic_layers():
            requests = self._requests_for_layer(layer_plan, viewport, plan)
            layer_objects: list[dict[str, Any]] = []
            for request in requests:
                response, request_breakdown = self._issue_request(request)
                breakdown.merge(request_breakdown)
                layer_objects.extend(response.objects)
            self.visible_objects[layer_plan.layer_index] = layer_objects
            if self.renderer is not None:
                breakdown.render_ms += self._render_layer(layer_plan, layer_objects, viewport)
        if breakdown.requests == 0:
            # Nothing needed fetching (e.g. viewport still inside the dynamic
            # box): the step is a pure cache hit.
            breakdown.cache_hit = True
        self.metrics.record(breakdown)
        return breakdown

    def _requests_for_layer(
        self, layer_plan: LayerPlan, viewport: Viewport, canvas_plan
    ) -> list[DataRequest]:
        """Translate the viewport into requests according to the fetch scheme."""
        scheme = self.scheme
        if scheme.is_tile:
            tile_scheme = TileScheme(canvas_plan.width, canvas_plan.height, scheme.tile_size)
            return [
                DataRequest(
                    app_name=self.service.compiled.app_name,
                    canvas_id=layer_plan.canvas_id,
                    layer_index=layer_plan.layer_index,
                    granularity="tile",
                    design=scheme.design,
                    tile_id=tile_id,
                    tile_size=scheme.tile_size,
                )
                for tile_id in tile_scheme.tiles_for_rect(viewport.to_rect())
            ]
        # Dynamic box: only fetch when the viewport escapes the current box.
        state = self._dbox_states.setdefault(layer_plan.layer_index, DynamicBoxState())
        if not state.needs_fetch(viewport):
            state.record_skip()
            return []
        calculator = scheme.box_calculator()
        box = calculator.compute(viewport, canvas_plan.width, canvas_plan.height)
        state.record_fetch(box)
        return [
            DataRequest(
                app_name=self.service.compiled.app_name,
                canvas_id=layer_plan.canvas_id,
                layer_index=layer_plan.layer_index,
                granularity="box",
                design=scheme.design,
                xmin=box.xmin,
                ymin=box.ymin,
                xmax=box.xmax,
                ymax=box.ymax,
            )
        ]

    def _issue_request(self, request: DataRequest) -> tuple[DataResponse, LatencyBreakdown]:
        """Serve a request from the frontend cache or from the backend."""
        breakdown = LatencyBreakdown()
        cached = self.cache.get(request.cache_key())
        if cached is not None:
            breakdown.cache_hit = True
            breakdown.objects_fetched = len(cached.objects)
            return cached, breakdown
        response = self.service.handle(request)
        payload = self.link.estimate_object_payload(response.object_count())
        network_ms = self.link.charge_request(payload)
        breakdown.query_ms = response.query_ms
        breakdown.network_ms = network_ms
        breakdown.requests = 1
        breakdown.objects_fetched = response.object_count()
        breakdown.bytes_fetched = payload
        breakdown.cache_hit = response.from_cache
        self.cache.put(request.cache_key(), response)
        return response, breakdown

    def _render_layer(
        self, layer_plan: LayerPlan, objects: list[dict[str, Any]], viewport: Viewport
    ) -> float:
        spec = self._spec()
        layer = spec.canvas(layer_plan.canvas_id).layer(layer_plan.layer_index)
        if layer.renderer is None or self.renderer is None:
            return 0.0
        timer = Timer()
        timer.start()
        self.renderer.render_objects(objects, layer.renderer, viewport)
        return timer.stop()

    # -- prefetching -----------------------------------------------------------------------------

    def _run_prefetch(self) -> None:
        """Warm caches for the viewports the prefetcher predicts."""
        if self.prefetcher is None:
            return
        canvas_id = self._require_canvas()
        plan = self.service.compiled.canvas_plan(canvas_id)
        predictions = self.prefetcher.predict(self.config.prefetch.lookahead_steps)
        for predicted in predictions:
            clamped = predicted.clamped_to(plan.width, plan.height)
            for layer_plan in plan.dynamic_layers():
                for request in self._prefetch_requests(layer_plan, clamped, plan):
                    if self.cache.peek(request.cache_key()) is not None:
                        continue
                    response = self.service.handle(request)
                    self.cache.put(request.cache_key(), response)
                    self.metrics.bump("prefetch_requests")

    def _prefetch_requests(
        self, layer_plan: LayerPlan, viewport: Viewport, canvas_plan
    ) -> list[DataRequest]:
        """Requests covering a *predicted* viewport (does not disturb dbox state)."""
        scheme = self.scheme
        if scheme.is_tile:
            return self._requests_for_layer(layer_plan, viewport, canvas_plan)
        calculator = scheme.box_calculator()
        box = calculator.compute(viewport, canvas_plan.width, canvas_plan.height)
        return [
            DataRequest(
                app_name=self.service.compiled.app_name,
                canvas_id=layer_plan.canvas_id,
                layer_index=layer_plan.layer_index,
                granularity="box",
                design=scheme.design,
                xmin=box.xmin,
                ymin=box.ymin,
                xmax=box.xmax,
                ymax=box.ymax,
            )
        ]

    # -- helpers --------------------------------------------------------------------------------

    def _spec(self):
        spec = self.service.compiled.spec
        if spec is None:
            raise UnknownCanvasError("backend plan carries no application spec")
        return spec

    def _require_canvas(self) -> str:
        if self.current_canvas_id is None:
            raise UnknownCanvasError("no canvas loaded; call load_initial_canvas()")
        return self.current_canvas_id

    def _require_viewport(self) -> Viewport:
        if self.viewport is None:
            raise UnknownCanvasError("no viewport; call load_initial_canvas()")
        return self.viewport

    def average_response_ms(self) -> float:
        """Average response time per recorded interaction step."""
        return self.metrics.average_response_ms()
