"""The Kyrix frontend: viewport state, interactions, caching and rendering."""

from .frontend import KyrixFrontend
from .renderer import RasterRenderer, RenderStats
from .session import ExplorationSession, SessionResult

__all__ = [
    "ExplorationSession",
    "KyrixFrontend",
    "RasterRenderer",
    "RenderStats",
    "SessionResult",
]
