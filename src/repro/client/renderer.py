"""Raster renderer: the offline stand-in for the browser's D3 rendering.

The frontend renders fetched objects into a numpy pixel buffer the size of
the viewport.  This is deliberately simple — dots, rectangles and labels —
but it exercises the full render path (rendering function -> primitives ->
pixels) so examples can verify what the user would see, and the metrics
collector can attribute render time per interaction step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.rendering import Renderer
from ..core.viewport import Viewport
from ..errors import ClientError


@dataclass
class RenderStats:
    """Counters for one renderer instance."""

    objects_rendered: int = 0
    primitives_rendered: int = 0
    frames: int = 0


class RasterRenderer:
    """Rasterises render primitives into a float intensity buffer."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ClientError(f"raster dimensions must be positive: {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.buffer = np.zeros((self.height, self.width), dtype=np.float64)
        self.stats = RenderStats()

    # -- frame lifecycle ------------------------------------------------------------

    def clear(self) -> None:
        """Start a new frame."""
        self.buffer.fill(0.0)
        self.stats.frames += 1

    def render_objects(
        self,
        objects: list[dict[str, Any]],
        renderer: Renderer,
        viewport: Viewport,
    ) -> int:
        """Render ``objects`` through ``renderer`` relative to ``viewport``.

        Returns the number of primitives drawn (objects entirely outside the
        viewport contribute none).
        """
        drawn = 0
        for row in objects:
            primitives = renderer.render(row)
            self.stats.objects_rendered += 1
            for primitive in primitives:
                if self._draw(primitive, viewport):
                    drawn += 1
                    self.stats.primitives_rendered += 1
        return drawn

    # -- primitive drawing ------------------------------------------------------------

    def _draw(self, primitive: dict[str, Any], viewport: Viewport) -> bool:
        kind = primitive.get("kind", "dot")
        anchored = bool(primitive.get("viewport_anchored", False))
        x = float(primitive.get("x", 0.0))
        y = float(primitive.get("y", 0.0))
        if not anchored:
            x -= viewport.x
            y -= viewport.y
        intensity = float(primitive.get("intensity", 1.0))
        if kind == "dot":
            radius = max(0.5, float(primitive.get("radius", 1.0)))
            return self._draw_rect(
                x - radius, y - radius, 2 * radius, 2 * radius, intensity
            )
        if kind == "rect":
            width = float(primitive.get("width", 1.0))
            height = float(primitive.get("height", 1.0))
            return self._draw_rect(x - width / 2, y - height / 2, width, height, intensity)
        if kind == "label":
            # Labels are drawn as a faint 1-pixel marker; text layout is out
            # of scope for the reproduction.
            return self._draw_rect(x, y, 1.0, 1.0, min(0.25, intensity))
        raise ClientError(f"unknown render primitive kind {kind!r}")

    def _draw_rect(self, x: float, y: float, width: float, height: float, intensity: float) -> bool:
        x0 = max(0, int(np.floor(x)))
        y0 = max(0, int(np.floor(y)))
        x1 = min(self.width, int(np.ceil(x + width)))
        y1 = min(self.height, int(np.ceil(y + height)))
        if x0 >= x1 or y0 >= y1:
            return False
        self.buffer[y0:y1, x0:x1] += intensity
        return True

    # -- inspection -------------------------------------------------------------------

    def nonzero_pixels(self) -> int:
        """Number of pixels touched in the current frame."""
        return int(np.count_nonzero(self.buffer))

    def total_intensity(self) -> float:
        return float(self.buffer.sum())

    def snapshot(self) -> np.ndarray:
        """A copy of the current frame."""
        return self.buffer.copy()
