"""Exploration sessions: scripted sequences of user interactions.

The benchmark harness and the examples drive the frontend through
*viewport movement traces* (Figure 5) and jump sequences.  An
:class:`ExplorationSession` wraps a frontend, replays a trace, and returns
the per-step latency metrics, excluding the initial canvas load (the paper
measures response time per pan step, not cold start).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..core.viewport import Viewport
from ..metrics.collector import LatencyBreakdown, MetricsCollector
from .frontend import KyrixFrontend

if TYPE_CHECKING:
    from ..config import KyrixConfig
    from ..server.prefetch import Prefetcher
    from ..server.schemes import FetchScheme
    from ..serving.base import DataService


@dataclass
class SessionResult:
    """Outcome of replaying one trace."""

    steps: int
    average_response_ms: float
    metrics: MetricsCollector
    initial_load: LatencyBreakdown | None = None

    def component_averages(self) -> dict[str, float]:
        return self.metrics.component_averages()

    def total_requests(self) -> int:
        return self.metrics.total_requests()

    def total_objects(self) -> int:
        return self.metrics.total_objects()


class ExplorationSession:
    """Replays interaction traces against a :class:`KyrixFrontend`."""

    def __init__(self, frontend: KyrixFrontend) -> None:
        self.frontend = frontend

    @classmethod
    def for_service(
        cls,
        service: "DataService",
        scheme: "FetchScheme | None" = None,
        *,
        config: "KyrixConfig | None" = None,
        prefetcher: "Prefetcher | None" = None,
        render: bool = False,
    ) -> "ExplorationSession":
        """Build a session over a fresh frontend for any ``DataService``.

        ``service`` is whatever :func:`repro.serving.build_service`
        returned — a cached backend, a sharded cluster router, a composed
        middleware stack or a remote stub; sessions drive them all through
        the same frontend.
        """
        frontend = KyrixFrontend(
            service, scheme, config=config, prefetcher=prefetcher, render=render
        )
        return cls(frontend)

    @classmethod
    def from_backend(
        cls,
        backend: "DataService",
        scheme: "FetchScheme | None" = None,
        *,
        config: "KyrixConfig | None" = None,
        prefetcher: "Prefetcher | None" = None,
        render: bool = False,
    ) -> "ExplorationSession":
        """Deprecated alias of :meth:`for_service` (kept for one release)."""
        import warnings

        warnings.warn(
            "ExplorationSession.from_backend is deprecated; use "
            "ExplorationSession.for_service",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls.for_service(
            backend, scheme, config=config, prefetcher=prefetcher, render=render
        )

    def run_trace(
        self,
        canvas_id: str,
        positions: Sequence[tuple[float, float]],
        *,
        viewport_width: float | None = None,
        viewport_height: float | None = None,
    ) -> SessionResult:
        """Load ``canvas_id`` at the first position, then pan through the rest.

        ``positions`` are viewport top-left corners in canvas coordinates.
        The initial load is *not* counted in the per-step metrics, matching
        the paper's measurement of pan response times.
        """
        if not positions:
            raise ValueError("a trace needs at least one viewport position")
        width = viewport_width or self.frontend.config.viewport_width
        height = viewport_height or self.frontend.config.viewport_height

        first_x, first_y = positions[0]
        initial = self.frontend.load_canvas(
            canvas_id, Viewport(first_x, first_y, width, height)
        )
        # Reset metrics so only the pan steps are measured.
        self.frontend.metrics.reset()
        self.frontend.link.reset()

        for x, y in positions[1:]:
            self.frontend.pan_to(x, y)

        metrics = self.frontend.metrics
        return SessionResult(
            steps=len(positions) - 1,
            average_response_ms=metrics.average_response_ms(),
            metrics=metrics,
            initial_load=initial,
        )

    def run_interactions(self, interactions: Iterable[dict[str, Any]]) -> SessionResult:
        """Replay a mixed sequence of interactions.

        Each interaction is a dictionary with an ``action`` key:

        * ``{"action": "load", "canvas": ..., "x": ..., "y": ...}``
        * ``{"action": "pan_to", "x": ..., "y": ...}``
        * ``{"action": "pan_by", "dx": ..., "dy": ...}``
        * ``{"action": "click", "row": {...}, "layer": 0}``

        The initial ``load`` (if first) is excluded from metrics, as in
        :meth:`run_trace`.
        """
        initial: LatencyBreakdown | None = None
        steps = 0
        for index, interaction in enumerate(interactions):
            action = interaction["action"]
            if action == "load":
                viewport = Viewport(
                    interaction.get("x", 0.0),
                    interaction.get("y", 0.0),
                    interaction.get("width", self.frontend.config.viewport_width),
                    interaction.get("height", self.frontend.config.viewport_height),
                )
                breakdown = self.frontend.load_canvas(interaction["canvas"], viewport)
                if index == 0:
                    initial = breakdown
                    self.frontend.metrics.reset()
                    continue
            elif action == "pan_to":
                self.frontend.pan_to(interaction["x"], interaction["y"])
            elif action == "pan_by":
                self.frontend.pan_by(interaction["dx"], interaction["dy"])
            elif action == "click":
                self.frontend.click(interaction["row"], interaction.get("layer", 0))
            else:
                raise ValueError(f"unknown interaction action {action!r}")
            steps += 1
        metrics = self.frontend.metrics
        return SessionResult(
            steps=steps,
            average_response_ms=metrics.average_response_ms(),
            metrics=metrics,
            initial_load=initial,
        )
