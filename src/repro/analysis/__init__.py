"""repolint: static enforcement of the serving stack's invariants.

The ROADMAP states the laws of the codebase — one factory for serving
endpoints, one sanctioned fault seam, lock-guarded shared state, monotonic
timing through the tracer, wire-faithful protocol dataclasses.  Tests only
exercise the happy paths of those laws; this package checks them *at check
time*, over the whole tree, on every run.

Two halves:

* the static half (:mod:`repro.analysis.core` + :mod:`repro.analysis.rules`):
  an AST-rule framework with inline ``# repolint: disable=<rule>``
  suppressions, a checked-in ``baseline.json`` for grandfathered findings,
  and a ``python -m repro.analysis`` CLI that exits non-zero on any
  non-baselined finding;
* the runtime half (:mod:`repro.analysis.lockwatch`): an instrumented lock
  wrapper that builds the global lock-acquisition-order graph while the
  concurrency hammers run, failing the suite on cycles (potential
  deadlocks) and on flagged unguarded mutations.

Zero dependencies beyond the standard library, by design: the linter must
run anywhere the tests run.
"""

from .core import (
    Checker,
    Finding,
    ModuleSource,
    all_rules,
    iter_source_files,
    load_baseline,
    register,
    run_analysis,
)

__all__ = [
    "Checker",
    "Finding",
    "ModuleSource",
    "all_rules",
    "iter_source_files",
    "load_baseline",
    "register",
    "run_analysis",
]
