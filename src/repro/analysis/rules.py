"""The built-in repolint rule pack: the ROADMAP's invariants as AST checks.

Rule ids (see ``README.md`` in this package for the full contract):

``factory-only``
    Serving endpoints come from :func:`repro.serving.build_service`; no
    direct ``KyrixBackend(...)`` / ``ClusterRouter(...)`` construction
    outside ``src/repro/serving/`` and ``src/repro/cluster/``.
``fault-seam``
    Tests simulate failures through :mod:`repro.serving.faults` — never by
    monkeypatching serving/cluster/net internals.
``lock-discipline``
    A class that creates ``self._lock`` must mutate its shared attributes
    inside ``with self._lock:`` (lexically), in every method but
    ``__init__``.
``span-discipline``
    Durations are measured with monotonic clocks through the tracer; bare
    ``time.time()`` is wall-clock and forbidden, and ``Tracer`` instances
    outside :mod:`repro.telemetry` bypass the configured pipeline.
``protocol-drift``
    A dataclass with both a serializer (``to_dict``/``to_json``) and a
    deserializer (``from_dict``/``from_json``) must mention every field in
    each, unless the method is blanket (``asdict(self)`` / ``cls(**...)``).
    Standalone codec modules registered in ``_CODEC_COMPANIONS`` (the
    binary columnar codec) must likewise mention every field of the
    sibling protocol dataclasses they encode, in both directions — a field
    added to ``DataRequest``/``DataResponse`` without a matching codec
    update fails the lint instead of silently dropping off the binary
    wire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Checker, Finding, ModuleSource, register

_ENDPOINT_CLASSES = ("KyrixBackend", "ClusterRouter")
_FACTORY_ALLOWED_PREFIXES = ("src/repro/serving/", "src/repro/cluster/")
_FAULT_SEAM_MODULES = ("serving", "cluster", "net")
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_SERIALIZERS = ("to_dict", "to_json")
_DESERIALIZERS = ("from_dict", "from_json")


def _call_name(func: ast.expr) -> str | None:
    """The trailing name of a call target: ``Foo(...)`` and
    ``pkg.mod.Foo(...)`` both yield ``"Foo"``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or ``None`` for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully qualified imported name, for resolving what a
    bare identifier in the module refers to."""
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mapping[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _is_internal_target(qualified: str) -> bool:
    """True when a dotted path reaches into the protected subsystems."""
    for module in _FAULT_SEAM_MODULES:
        prefix = f"repro.{module}"
        if qualified == prefix or qualified.startswith(prefix + "."):
            return True
    return False


@register
class FactoryOnlyChecker(Checker):
    """Direct endpoint construction outside the sanctioned zones."""

    rule = "factory-only"
    description = (
        "serving endpoints must come from serving.build_service; no direct "
        "KyrixBackend/ClusterRouter construction outside serving/ and cluster/"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.rel_path.startswith(_FACTORY_ALLOWED_PREFIXES):
            return
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in _ENDPOINT_CLASSES:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"direct {name}(...) construction; build endpoints "
                        "with repro.serving.build_service",
                    )


@register
class FaultSeamChecker(Checker):
    """Monkeypatching serving/cluster/net internals from tests."""

    rule = "fault-seam"
    description = (
        "tests simulate failures through repro.serving.faults, not by "
        "monkeypatching serving/cluster/net internals"
    )

    _PATCH_METHODS = {"setattr", "delattr", "setitem", "delitem"}

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.rel_path.startswith("tests/"):
            return
        tree = module.tree
        if tree is None:
            return
        imports = _import_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._patched_target(node, imports)
            if target is not None:
                yield self.finding(
                    module,
                    node.lineno,
                    f"monkeypatching internal {target!r}; simulate failures "
                    "through repro.serving.faults instead",
                )

    def _patched_target(
        self, call: ast.Call, imports: dict[str, str]
    ) -> str | None:
        """The internal dotted path a patching call reaches into, if any."""
        func = call.func
        # monkeypatch.setattr(...) / monkeypatch.delattr(...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._PATCH_METHODS
            and isinstance(func.value, ast.Name)
            and "monkeypatch" in func.value.id
        ):
            return self._resolve_first_arg(call, imports)
        # mock.patch("...") / patch("...") / patch.object(X, ...)
        name = _dotted_name(func)
        if name is not None:
            tail = name.split(".")
            if tail[-1] == "patch" or tail[-2:] == ["patch", "object"]:
                return self._resolve_first_arg(call, imports)
        return None

    def _resolve_first_arg(
        self, call: ast.Call, imports: dict[str, str]
    ) -> str | None:
        if not call.args:
            return None
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value if _is_internal_target(first.value) else None
        dotted = _dotted_name(first)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        qualified = imports.get(root, root) + (f".{rest}" if rest else "")
        return qualified if _is_internal_target(qualified) else None


@register
class LockDisciplineChecker(Checker):
    """Shared-attribute writes outside the class's own lock."""

    rule = "lock-discipline"
    description = (
        "classes creating self._lock-style locks must mutate shared "
        "attributes inside `with self.<lock>:` blocks"
    )

    _CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guards = self._guard_attributes(cls)
        if not guards:
            return
        for item in cls.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name not in self._CONSTRUCTORS
            ):
                yield from self._check_method(module, cls, item, guards)

    def _guard_attributes(self, cls: ast.ClassDef) -> set[str]:
        """Attribute names holding locks created by this class: assignments
        of ``threading.Lock()``/``RLock()``/``Condition()`` (or re-exports)
        to ``self.<name>``."""
        guards: set[str] = set()
        for node in ast.walk(cls):
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not isinstance(value, ast.Call):
                continue
            if _call_name(value.func) not in _LOCK_FACTORIES:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards.add(target.attr)
        return guards

    def _check_method(
        self,
        module: ModuleSource,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        guards: set[str],
    ) -> Iterator[Finding]:
        findings: list[Finding] = []

        def is_guard_expr(expr: ast.expr) -> bool:
            return (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in guards
            )

        def self_attribute(target: ast.expr) -> str | None:
            """The dotted tail of a ``self``-rooted attribute target."""
            parts: list[str] = []
            node = target
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            while isinstance(node, ast.Subscript):
                node = node.value
                while isinstance(node, ast.Attribute):
                    parts.append(node.attr)
                    node = node.value
            if isinstance(node, ast.Name) and node.id == "self" and parts:
                return ".".join(reversed(parts))
            return None

        def visit(node: ast.stmt, guarded: bool) -> None:
            if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
                now_guarded = guarded or any(
                    is_guard_expr(item.context_expr) for item in node.items
                )
                for child in node.body:
                    visit(child, now_guarded)
                return
            if not guarded:
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if getattr(node, "value", None) is not None:
                        targets = [node.target]
                for target in targets:
                    attribute = self_attribute(target)
                    if attribute is not None and attribute not in guards:
                        findings.append(
                            self.finding(
                                module,
                                node.lineno,
                                f"{cls.name}.{method.name} writes "
                                f"self.{attribute} outside `with self.<lock>:` "
                                f"(guards: {', '.join(sorted(guards))})",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    visit(child, guarded)

        for statement in method.body:
            visit(statement, False)
        yield from findings


@register
class SpanDisciplineChecker(Checker):
    """Wall-clock timing and out-of-band tracer construction."""

    rule = "span-discipline"
    description = (
        "durations go through Tracer spans / monotonic clocks; no bare "
        "time.time(), no Tracer() outside repro.telemetry"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        if tree is None:
            return
        time_aliases = self._time_time_aliases(tree)
        in_src = module.rel_path.startswith("src/repro/")
        in_telemetry = module.rel_path.startswith("src/repro/telemetry/")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_time_time(node.func, time_aliases):
                yield self.finding(
                    module,
                    node.lineno,
                    "bare time.time() is wall-clock; measure durations with "
                    "time.monotonic()/perf_counter() or a Tracer span",
                )
            elif (
                in_src
                and not in_telemetry
                and _call_name(node.func) == "Tracer"
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    "direct Tracer() construction bypasses the configured "
                    "pipeline; use repro.telemetry.get_tracer()",
                )

    @staticmethod
    def _time_time_aliases(tree: ast.Module) -> set[str]:
        """Local names bound to ``time.time`` via ``from time import ...``."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        aliases.add(alias.asname or alias.name)
        return aliases

    @staticmethod
    def _is_time_time(func: ast.expr, aliases: set[str]) -> bool:
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            return True
        return isinstance(func, ast.Name) and func.id in aliases


#: Standalone codec modules that re-encode a *sibling* module's protocol
#: dataclasses: rel_path -> ((sibling file, class name, function names), ...).
#: Each listed module-level function must mention every field of the named
#: dataclass, so adding a field to the protocol without updating the binary
#: codec fails the lint instead of silently dropping off the wire.
_CODEC_COMPANIONS: dict[str, tuple[tuple[str, str, tuple[str, ...]], ...]] = {
    "src/repro/net/columnar.py": (
        ("protocol.py", "DataRequest", ("_pack_request", "_unpack_request")),
        ("protocol.py", "DataResponse", ("encode_response", "decode_response")),
    ),
}


@register
class ProtocolDriftChecker(Checker):
    """Dataclass fields missing from their wire-codec methods."""

    rule = "protocol-drift"
    description = (
        "dataclasses with to_dict/to_json and from_dict/from_json must "
        "mention every field in both directions (or serialize blanket); "
        "registered codec modules must cover their companion dataclasses"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.rel_path.startswith("src/"):
            return
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and self._is_dataclass(node):
                yield from self._check_dataclass(module, node)
        yield from self._check_codec_module(module, tree)

    @staticmethod
    def _is_dataclass(cls: ast.ClassDef) -> bool:
        for decorator in cls.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if _call_name(target) == "dataclass" or (
                isinstance(target, ast.Name) and target.id == "dataclass"
            ):
                return True
        return False

    def _check_dataclass(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        serializers = [methods[name] for name in _SERIALIZERS if name in methods]
        deserializers = [methods[name] for name in _DESERIALIZERS if name in methods]
        if not serializers or not deserializers:
            return
        fields = self._field_names(cls)
        if not fields:
            return
        for method in serializers + deserializers:
            if self._is_blanket(method):
                continue
            covered = self._covered_names(method)
            for field_name in fields:
                if field_name not in covered:
                    yield self.finding(
                        module,
                        method.lineno,
                        f"{cls.name}.{method.name} omits field "
                        f"{field_name!r}; wire codecs must cover every "
                        "dataclass field",
                    )

    def _check_codec_module(
        self, module: ModuleSource, tree: ast.Module
    ) -> Iterator[Finding]:
        companions = _CODEC_COMPANIONS.get(module.rel_path)
        if not companions:
            return
        functions = {
            node.name: node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for sibling_name, class_name, function_names in companions:
            fields = self._sibling_fields(module, sibling_name, class_name)
            if not fields:
                continue
            for function_name in function_names:
                function = functions.get(function_name)
                if function is None:
                    yield self.finding(
                        module,
                        1,
                        f"codec module must define {function_name}() "
                        f"covering every {class_name} field",
                    )
                    continue
                covered = self._covered_names(function)
                for field_name in fields:
                    if field_name not in covered:
                        yield self.finding(
                            module,
                            function.lineno,
                            f"{function_name} omits {class_name} field "
                            f"{field_name!r}; the binary codec must cover "
                            "every protocol dataclass field",
                        )

    def _sibling_fields(
        self, module: ModuleSource, sibling_name: str, class_name: str
    ) -> list[str]:
        """Field names of ``class_name`` in a sibling module on disk.

        Returns ``[]`` when the sibling cannot be read or parsed (e.g. the
        virtual paths used by rule-test fixtures), which skips the check
        rather than fabricating findings.
        """
        try:
            text = (module.path.parent / sibling_name).read_text(encoding="utf-8")
            tree = ast.parse(text)
        except (OSError, SyntaxError, ValueError):
            return []
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return self._field_names(node)
        return []

    @staticmethod
    def _field_names(cls: ast.ClassDef) -> list[str]:
        names: list[str] = []
        for item in cls.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                annotation = item.annotation
                if (
                    isinstance(annotation, ast.Subscript)
                    and _call_name(annotation.value) == "ClassVar"
                ) or _call_name(annotation) == "ClassVar":
                    continue
                if not item.target.id.startswith("_"):
                    names.append(item.target.id)
        return names

    @staticmethod
    def _is_blanket(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """True for methods that serialize every field structurally —
        ``asdict(self)``, ``vars(self)``, ``self.__dict__``,
        ``cls(**mapping)`` — or delegate to a sibling codec
        (``json.dumps(self.to_dict())``, ``cls.from_dict(...)``), whose
        coverage is checked on the sibling itself."""
        siblings = set(_SERIALIZERS) | set(_DESERIALIZERS)
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in {"asdict", "vars"}:
                    return True
                if name in siblings and name != method.name:
                    return True
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "cls"
                    and any(keyword.arg is None for keyword in node.keywords)
                ):
                    return True
            if isinstance(node, ast.Attribute) and node.attr == "__dict__":
                return True
        return False

    @staticmethod
    def _covered_names(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """String literals plus explicit keyword names used in the method —
        the names a hand-rolled codec mentions."""
        covered: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                covered.add(node.value)
            elif isinstance(node, ast.Call):
                covered.update(
                    keyword.arg for keyword in node.keywords if keyword.arg
                )
            elif isinstance(node, ast.Attribute):
                covered.add(node.attr)
        return covered
