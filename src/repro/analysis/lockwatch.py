"""Runtime lock-order watching: the dynamic half of ``repro.analysis``.

The static ``lock-discipline`` rule proves writes happen *under a* lock;
it cannot prove the locks are acquired in a consistent *order* across
threads.  :class:`LockWatch` does: every instrumented lock records, at
acquire time, an edge from each lock the acquiring thread already holds to
the lock being acquired.  The edges form the global lock-acquisition-order
graph; a cycle in that graph is a potential deadlock (thread A holds X and
wants Y while thread B holds Y and wants X), and the watch reports it even
when the interleaving that would actually deadlock never fires in the run.

Opt-in, two ways:

* ``REPRO_LOCKWATCH=1`` in the environment — ``tests/serving/conftest.py``
  installs the watch for the whole session and verifies the graph after
  every test (this is how CI runs the concurrency hammers);
* programmatic — ``watch = LockWatch(); lock = watch.wrap(threading.Lock(),
  "my lock")`` for targeted tests, or :func:`install` to patch
  ``threading.Lock``/``RLock`` so every lock created afterwards is watched.

The watch also checks *guarded mutations* at runtime:
:func:`guard_attributes` re-classes an object so writes to the flagged
attributes without the guard lock held raise (or are recorded as)
:class:`UnguardedWriteError`.

Cycle detection runs only when a **new** edge appears, on the small edge
set, so the hammers keep hammering; bookkeeping is O(held locks) per
acquire.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterable

__all__ = [
    "LockOrderError",
    "UnguardedWriteError",
    "LockWatch",
    "InstrumentedLock",
    "guard_attributes",
    "install",
    "uninstall",
    "installed",
    "current",
    "watching_requested",
]

_ENV_FLAG = "REPRO_LOCKWATCH"


class LockOrderError(RuntimeError):
    """A cycle in the lock-acquisition-order graph (potential deadlock)."""


class UnguardedWriteError(RuntimeError):
    """A guarded attribute was written without its lock held."""


class _HeldState(threading.local):
    """Per-thread stack of (lock id) currently held, in acquire order."""

    def __init__(self) -> None:
        self.stack: list[int] = []


class LockWatch:
    """The global lock-order graph plus recorded violations.

    With ``raise_on_violation=True`` (the default for direct use) a cycle
    or unguarded write raises immediately at the offending call; with
    ``False`` (what the conftest uses, so worker threads do not die
    mid-hammer) violations are recorded and :meth:`verify` raises later.
    """

    def __init__(self, *, raise_on_violation: bool = True) -> None:
        self.raise_on_violation = raise_on_violation
        # Use the *real* factory even when install() has patched
        # threading.Lock, so a watch's own mutex is never instrumented.
        real_lock = _INSTALLED.get("Lock", threading.Lock)
        self._mutex = real_lock()
        self._edges: dict[int, set[int]] = {}
        self._names: dict[int, str] = {}
        self._violations: list[str] = []
        self._held = _HeldState()

    # -- wrapping -------------------------------------------------------

    def wrap(self, lock: Any, name: str | None = None) -> "InstrumentedLock":
        """An instrumented proxy for ``lock`` feeding this watch."""
        if isinstance(lock, InstrumentedLock):
            return lock
        return InstrumentedLock(lock, self, name=name)

    def _register(self, lock_id: int, name: str) -> None:
        with self._mutex:
            self._names.setdefault(lock_id, name)

    # -- acquisition bookkeeping ---------------------------------------

    def note_acquire(self, lock_id: int, *, reentrant: bool) -> None:
        """Record (before blocking) that the current thread is taking
        ``lock_id`` while holding everything on its stack."""
        held = self._held.stack
        if reentrant and lock_id in held:
            held.append(lock_id)  # re-entry: no new ordering information
            return
        new_cycle: list[str] | None = None
        with self._mutex:
            for held_id in set(held):
                if held_id == lock_id:
                    continue
                successors = self._edges.setdefault(held_id, set())
                if lock_id not in successors:
                    successors.add(lock_id)
                    cycle = self._find_cycle(lock_id, held_id)
                    if cycle is not None:
                        new_cycle = [self._names.get(n, str(n)) for n in cycle]
        held.append(lock_id)
        if new_cycle is not None:
            self._violate(
                LockOrderError,
                "lock-order cycle (potential deadlock): "
                + " -> ".join(new_cycle),
            )

    def note_release(self, lock_id: int) -> None:
        held = self._held.stack
        for index in range(len(held) - 1, -1, -1):
            if held[index] == lock_id:
                del held[index]
                return

    def holds(self, lock_id: int) -> bool:
        return lock_id in self._held.stack

    # -- graph queries --------------------------------------------------

    def _find_cycle(self, start: int, target: int) -> list[int] | None:
        """A path ``start -> ... -> target`` in the edge set, meaning the
        just-added edge ``target -> start`` closed a cycle."""
        path = [start]
        seen = {start}

        def walk(node: int) -> bool:
            if node == target:
                return True
            for successor in self._edges.get(node, ()):
                if successor in seen:
                    continue
                seen.add(successor)
                path.append(successor)
                if walk(successor):
                    return True
                path.pop()
            return False

        if walk(start):
            return [target, *path]
        return None

    def watched_lock_names(self) -> list[str]:
        """Names of every lock registered with this watch."""
        with self._mutex:
            return sorted(self._names.values())

    def edges(self) -> list[tuple[str, str]]:
        """The graph as (held-name, acquired-name) pairs, for reporting."""
        with self._mutex:
            return sorted(
                (self._names.get(a, str(a)), self._names.get(b, str(b)))
                for a, successors in self._edges.items()
                for b in successors
            )

    def assert_acyclic(self) -> None:
        """Full-graph cycle check (three-colour DFS), independent of the
        incremental checks done at acquire time."""
        with self._mutex:
            edges = {node: set(successors) for node, successors in self._edges.items()}
            names = dict(self._names)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[int, int] = {}

        def visit(node: int, trail: list[int]) -> None:
            colour[node] = GREY
            trail.append(node)
            for successor in edges.get(node, ()):
                state = colour.get(successor, WHITE)
                if state == GREY:
                    cycle = trail[trail.index(successor) :] + [successor]
                    raise LockOrderError(
                        "lock-order cycle (potential deadlock): "
                        + " -> ".join(names.get(n, str(n)) for n in cycle)
                    )
                if state == WHITE:
                    visit(successor, trail)
            trail.pop()
            colour[node] = BLACK

        for node in list(edges):
            if colour.get(node, WHITE) == WHITE:
                visit(node, [])

    # -- violations -----------------------------------------------------

    def _violate(self, exc_type: type[RuntimeError], message: str) -> None:
        with self._mutex:
            self._violations.append(message)
        if self.raise_on_violation:
            raise exc_type(message)

    def record_unguarded_write(self, description: str) -> None:
        self._violate(UnguardedWriteError, description)

    @property
    def violations(self) -> list[str]:
        with self._mutex:
            return list(self._violations)

    def clear_violations(self) -> None:
        with self._mutex:
            self._violations.clear()

    def verify(self) -> None:
        """Raise on anything recorded so far, then re-check the full graph."""
        recorded = self.violations
        if recorded:
            raise LockOrderError(
                f"{len(recorded)} lockwatch violation(s):\n" + "\n".join(recorded)
            )
        self.assert_acyclic()


class InstrumentedLock:
    """A drop-in proxy over a ``threading`` lock reporting to a watch.

    Supports the full lock protocol — context manager,
    ``acquire(blocking, timeout)`` — plus the private
    ``_release_save``/``_acquire_restore``/``_is_owned`` hooks
    ``threading.Condition`` uses, so conditions built over watched locks
    stay correctly tracked across ``wait()``.
    """

    def __init__(self, inner: Any, watch: LockWatch, name: str | None = None) -> None:
        self._inner = inner
        self._watch = watch
        self._reentrant = hasattr(inner, "_is_owned") or "RLock" in type(inner).__name__
        self.name = name or f"{type(inner).__name__}@{id(inner):#x}"
        watch._register(id(self), self.name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._watch.note_acquire(id(self), reentrant=self._reentrant)
        acquired = self._inner.acquire(blocking, timeout)
        if not acquired:
            self._watch.note_release(id(self))
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._watch.note_release(id(self))

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        return self._watch.holds(id(self))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    # Condition integration: threading.Condition picks these up when the
    # lock provides them; forwarding keeps the held-stack truthful across
    # wait()/notify() cycles.

    def _release_save(self) -> Any:
        inner_save = getattr(self._inner, "_release_save", None)
        state = inner_save() if inner_save is not None else self._inner.release()
        self._watch.note_release(id(self))
        return state

    def _acquire_restore(self, state: Any) -> None:
        self._watch.note_acquire(id(self), reentrant=self._reentrant)
        inner_restore = getattr(self._inner, "_acquire_restore", None)
        if inner_restore is not None:
            inner_restore(state)
        else:
            self._inner.acquire()

    def _is_owned(self) -> bool:
        inner_owned = getattr(self._inner, "_is_owned", None)
        if inner_owned is not None:
            return bool(inner_owned())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        return f"InstrumentedLock({self.name})"


def guard_attributes(obj: Any, lock: InstrumentedLock, attrs: Iterable[str]) -> Any:
    """Enforce at runtime that ``obj``'s ``attrs`` are only written while
    ``lock`` is held by the writing thread.

    Re-classes ``obj`` into a dynamic subclass whose ``__setattr__`` checks
    the watch; returns ``obj``.  The guard lock must be an
    :class:`InstrumentedLock` (ownership is otherwise unknowable from
    outside the lock).
    """
    guarded = frozenset(attrs)
    watch = lock._watch
    base = type(obj)

    def checked_setattr(self: Any, name: str, value: Any) -> None:
        if name in guarded and not lock.held_by_current_thread():
            watch.record_unguarded_write(
                f"unguarded write to {base.__name__}.{name} "
                f"(guard {lock.name} not held)"
            )
        base.__setattr__(self, name, value)

    subclass = type(
        f"Guarded{base.__name__}",
        (base,),
        {"__setattr__": checked_setattr, "__guarded_attrs__": guarded},
    )
    obj.__class__ = subclass
    return obj


# -- process-wide installation ------------------------------------------

_INSTALLED: dict[str, Any] = {}


def watching_requested() -> bool:
    """True when the environment opted into lockwatch (``REPRO_LOCKWATCH``)."""
    return os.environ.get(_ENV_FLAG, "").strip() not in ("", "0", "false", "no")


def installed() -> bool:
    return bool(_INSTALLED)


def current() -> LockWatch | None:
    """The installed process-wide watch, if any."""
    return _INSTALLED.get("watch")


def install(watch: LockWatch | None = None) -> LockWatch:
    """Patch ``threading.Lock``/``RLock`` so every lock created afterwards
    is instrumented and feeds ``watch``.

    Locks that already exist keep working unwatched; the serving stack
    creates its locks per-service, so installing before the stack is built
    (the conftest does it at session start) watches everything that
    matters.  :func:`uninstall` restores the real factories.
    """
    if _INSTALLED:
        return _INSTALLED["watch"]
    if watch is None:
        watch = LockWatch(raise_on_violation=False)
    real_lock = threading.Lock
    real_rlock = threading.RLock

    def lock_factory() -> InstrumentedLock:
        return watch.wrap(real_lock(), name=_creation_site("Lock"))

    def rlock_factory() -> InstrumentedLock:
        return watch.wrap(real_rlock(), name=_creation_site("RLock"))

    threading.Lock = lock_factory  # type: ignore[assignment]
    threading.RLock = rlock_factory  # type: ignore[assignment]
    _INSTALLED.update(
        {"watch": watch, "Lock": real_lock, "RLock": real_rlock}
    )
    return watch


def uninstall() -> None:
    if not _INSTALLED:
        return
    threading.Lock = _INSTALLED["Lock"]  # type: ignore[assignment]
    threading.RLock = _INSTALLED["RLock"]  # type: ignore[assignment]
    _INSTALLED.clear()


def _creation_site(kind: str) -> str:
    """``Lock(src/repro/server/cache.py:61)`` — names graph nodes by where
    the lock was made, which is what a human debugging an ordering report
    needs."""
    import sys

    frame = sys._getframe(2)
    filename = frame.f_code.co_filename
    for marker in ("/src/", "/tests/", "/benchmarks/", "/examples/"):
        index = filename.rfind(marker)
        if index != -1:
            filename = filename[index + 1 :]
            break
    return f"{kind}({filename}:{frame.f_lineno})"
