"""The repolint plugin framework: findings, checkers, suppressions, baseline.

A :class:`Checker` inspects one parsed module and yields
:class:`Finding` objects.  The runner (:func:`run_analysis`) walks the
source tree (``src/ tests/ benchmarks/ examples/``), applies every
registered checker, drops findings that are suppressed inline
(``# repolint: disable=<rule>`` on the offending line or on the enclosing
``def``/``class`` line) and splits the rest into *baselined* (grandfathered
in ``baseline.json``) and *fresh* findings.  Only fresh findings fail the
build.

Baseline entries match on ``(rule, path, message)`` — deliberately not on
line number, so grandfathered findings survive unrelated edits above them.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

#: Directories (relative to the repo root) the tree walker covers.
DEFAULT_TREES = ("src", "tests", "benchmarks", "examples")

#: Where the grandfathered-findings baseline lives, relative to the root.
BASELINE_PATH = Path("src") / "repro" / "analysis" / "baseline.json"

_SUPPRESS_RE = re.compile(r"#\s*repolint:\s*disable=([A-Za-z0-9_\-, ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: repo-root-relative POSIX path
    line: int  #: 1-based line number
    message: str
    severity: str = "error"  #: ``"error"`` or ``"warning"``

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity for baseline matching; line numbers drift, so they
        are deliberately excluded."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class _Scope:
    """A def/class span, for def-line suppressions covering a whole body."""

    start: int
    end: int
    header_lines: tuple[int, ...]


class ModuleSource:
    """One source file: text, lazily parsed AST, and suppression map."""

    def __init__(self, path: Path, rel_path: str, text: str | None = None) -> None:
        self.path = path
        self.rel_path = rel_path
        self.text = path.read_text(encoding="utf-8") if text is None else text
        self.lines = self.text.splitlines()
        self._tree: ast.Module | None = None
        self._parse_error: SyntaxError | None = None
        self._suppressions: dict[int, set[str]] | None = None
        self._scopes: list[_Scope] | None = None

    @property
    def tree(self) -> ast.Module | None:
        """The parsed module, or ``None`` when the file does not parse
        (the runner reports a ``parse-error`` finding instead)."""
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree

    @property
    def parse_error(self) -> SyntaxError | None:
        self.tree
        return self._parse_error

    def _suppression_map(self) -> dict[int, set[str]]:
        if self._suppressions is None:
            suppressions: dict[int, set[str]] = {}
            for number, line in enumerate(self.lines, start=1):
                match = _SUPPRESS_RE.search(line)
                if match:
                    rules = {part.strip() for part in match.group(1).split(",")}
                    suppressions[number] = {rule for rule in rules if rule}
            self._suppressions = suppressions
        return self._suppressions

    def _scope_spans(self) -> list[_Scope]:
        """Spans of every function/class definition, with the lines that
        count as its "def line" (the ``def``/``class`` statement itself and
        any decorator lines above it)."""
        if self._scopes is None:
            scopes: list[_Scope] = []
            tree = self.tree
            if tree is not None:
                for node in ast.walk(tree):
                    if isinstance(
                        node,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        header = [node.lineno]
                        header.extend(
                            decorator.lineno for decorator in node.decorator_list
                        )
                        scopes.append(
                            _Scope(
                                start=min(header),
                                end=node.end_lineno or node.lineno,
                                header_lines=tuple(header),
                            )
                        )
            self._scopes = scopes
        return self._scopes

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled for ``line`` — either by a comment
        on the line itself or by one on the header of an enclosing
        ``def``/``class``."""
        suppressions = self._suppression_map()

        def disabled_at(number: int) -> bool:
            rules = suppressions.get(number)
            return bool(rules) and (rule in rules or "all" in rules)

        if disabled_at(line):
            return True
        for scope in self._scope_spans():
            if scope.start <= line <= scope.end and any(
                disabled_at(header) for header in scope.header_lines
            ):
                return True
        return False


class Checker:
    """Base class for one rule.  Subclasses set :attr:`rule` /
    :attr:`description` and implement :meth:`check`."""

    #: The rule id used in findings, CLI filters and suppressions.
    rule: str = ""
    #: One-line summary shown by ``python -m repro.analysis --rules``.
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleSource,
        line: int,
        message: str,
        *,
        severity: str = "error",
    ) -> Finding:
        return Finding(
            rule=self.rule,
            path=module.rel_path,
            line=line,
            message=message,
            severity=severity,
        )


#: rule id -> checker class, in registration order.
_REGISTRY: dict[str, type[Checker]] = {}


def register(checker: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not checker.rule:
        raise ValueError(f"{checker.__name__} must set a rule id")
    if checker.rule in _REGISTRY:
        raise ValueError(f"duplicate rule id {checker.rule!r}")
    _REGISTRY[checker.rule] = checker
    return checker


def all_rules() -> dict[str, type[Checker]]:
    """The registered checkers (importing :mod:`repro.analysis.rules` to
    pick up the built-in pack)."""
    from . import rules  # noqa: F401  (import registers the rule pack)

    return dict(_REGISTRY)


def iter_source_files(
    root: Path, trees: Iterable[str] = DEFAULT_TREES
) -> Iterator[Path]:
    """Every ``*.py`` file under the covered trees, sorted, skipping
    caches and hidden directories."""
    for tree_name in trees:
        base = root / tree_name
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            parts = path.relative_to(root).parts
            if any(part == "__pycache__" or part.startswith(".") for part in parts):
                continue
            yield path


def load_baseline(path: Path) -> list[dict[str, Any]]:
    """The grandfathered-findings entries, or ``[]`` when absent."""
    if not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("entries", [])
    for entry in entries:
        for key in ("rule", "path", "message"):
            if key not in entry:
                raise ValueError(f"baseline entry missing {key!r}: {entry}")
    return entries


@dataclass
class AnalysisResult:
    """Everything one run produced, split for reporting."""

    fresh: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    files_checked: int = 0
    stale_baseline: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.fresh

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed_count,
            "findings": [finding.to_dict() for finding in self.fresh],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "stale_baseline": list(self.stale_baseline),
        }


def check_module(
    module: ModuleSource,
    checkers: Iterable[Checker],
) -> tuple[list[Finding], int]:
    """All non-suppressed findings for one module, plus how many were
    suppressed inline."""
    findings: list[Finding] = []
    suppressed = 0
    if module.parse_error is not None:
        error = module.parse_error
        findings.append(
            Finding(
                rule="parse-error",
                path=module.rel_path,
                line=error.lineno or 1,
                message=f"file does not parse: {error.msg}",
            )
        )
        return findings, suppressed
    for checker in checkers:
        for finding in checker.check(module):
            if module.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def run_analysis(
    root: Path,
    *,
    rules: Iterable[str] | None = None,
    baseline_path: Path | None = None,
    trees: Iterable[str] = DEFAULT_TREES,
    files: Iterable[Path] | None = None,
    source_loader: Callable[[Path], ModuleSource] | None = None,
) -> AnalysisResult:
    """Run the rule pack over the tree rooted at ``root``.

    ``rules`` restricts to a subset of rule ids; ``files`` overrides the
    tree walk with an explicit file list (used by the CLI's positional
    paths).  ``source_loader`` is a test seam for feeding synthetic
    sources.
    """
    registry = all_rules()
    if rules is not None:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(unknown)}")
        registry = {rule: registry[rule] for rule in registry if rule in set(rules)}
    checkers = [checker_cls() for checker_cls in registry.values()]

    if baseline_path is None:
        baseline_path = root / BASELINE_PATH
    baseline_entries = load_baseline(baseline_path)
    baseline_keys = {
        (entry["rule"], entry["path"], entry["message"]): entry
        for entry in baseline_entries
    }

    result = AnalysisResult()
    matched_keys: set[tuple[str, str, str]] = set()
    paths = list(files) if files is not None else list(iter_source_files(root, trees))
    for path in paths:
        rel_path = path.relative_to(root).as_posix()
        module = (
            source_loader(path)
            if source_loader is not None
            else ModuleSource(path, rel_path)
        )
        result.files_checked += 1
        findings, suppressed = check_module(module, checkers)
        result.suppressed_count += suppressed
        for finding in findings:
            key = finding.baseline_key()
            if key in baseline_keys:
                matched_keys.add(key)
                result.baselined.append(finding)
            else:
                result.fresh.append(finding)
    result.stale_baseline = [
        entry for key, entry in baseline_keys.items() if key not in matched_keys
    ]
    result.fresh.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return result


def find_repo_root(start: Path | None = None) -> Path:
    """The repository root: the nearest ancestor holding ``src/repro``."""
    candidates = []
    if start is not None:
        candidates.append(start)
    candidates.append(Path.cwd())
    candidates.append(Path(__file__).resolve().parents[3])
    for candidate in candidates:
        for directory in (candidate, *candidate.parents):
            if (directory / "src" / "repro").is_dir():
                return directory
    raise FileNotFoundError("cannot locate the repository root (src/repro)")
