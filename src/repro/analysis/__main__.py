"""``python -m repro.analysis`` — lint the tree against the rule pack.

Exit status: 0 when every finding is suppressed or baselined, 1 when any
fresh finding remains, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core import BASELINE_PATH, all_rules, find_repo_root, run_analysis


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static checks for the serving stack's ROADMAP invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="specific files to check (default: the whole tree)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: auto-detected from cwd / package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full result as JSON on stdout (for CI artifacts)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="list the registered rule ids and exit",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="selected_rules",
        metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_PATH.as_posix()})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report grandfathered findings as fresh",
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule_id, checker in all_rules().items():
            print(f"{rule_id:18s} {checker.description}")
        return 0

    try:
        root = (args.root or find_repo_root()).resolve()
    except FileNotFoundError as exc:
        parser.error(str(exc))
    baseline_path = args.baseline
    if args.no_baseline:
        baseline_path = Path("/dev/null")
    files = None
    if args.paths:
        files = [path.resolve() for path in args.paths]
        for path in files:
            if not path.is_file():
                parser.error(f"not a file: {path}")

    try:
        result = run_analysis(
            root,
            rules=args.selected_rules,
            baseline_path=baseline_path,
            files=files,
        )
    except ValueError as exc:
        parser.error(str(exc))

    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        for finding in result.fresh:
            print(finding.render())
        summary = (
            f"{result.files_checked} files checked: "
            f"{len(result.fresh)} finding(s), "
            f"{len(result.baselined)} baselined, "
            f"{result.suppressed_count} suppressed inline"
        )
        if result.stale_baseline:
            summary += f", {len(result.stale_baseline)} stale baseline entr(y/ies)"
        print(summary)
        for entry in result.stale_baseline:
            print(
                "stale baseline entry (no longer fires): "
                f"[{entry['rule']}] {entry['path']}: {entry['message']}"
            )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
