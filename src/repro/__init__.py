"""repro — a full reproduction of *Kyrix: Interactive Visual Data Exploration
at Scale* (Tao et al., CIDR 2019).

The package is organised the way the paper's architecture diagram (Figure 1)
is drawn:

* developers write a declarative specification with :mod:`repro.core`
  (canvases, layers, transforms, placements, renderings, jumps),
* :mod:`repro.compiler` validates and compiles it,
* :mod:`repro.server` precomputes placement tables / indexes in the embedded
  database (:mod:`repro.storage` + :mod:`repro.minisql`) and answers data
  requests with static tiles or the paper's dynamic boxes,
* :mod:`repro.serving` defines the unified ``DataService`` serving surface
  (protocol + composable middleware + wire transport) and the
  :func:`~repro.serving.build_service` factory every call site builds its
  stack with,
* :mod:`repro.client` plays the browser frontend: it tracks the viewport,
  issues pans and jumps, caches, prefetches and renders,
* :mod:`repro.datagen` and :mod:`repro.bench` regenerate the evaluation.

Quickstart::

    from repro.bench import build_dots_backend, default_config
    from repro.client import KyrixFrontend
    from repro.datagen import uniform_spec
    from repro.server import dbox_scheme

    stack = build_dots_backend(uniform_spec(num_points=50_000))
    frontend = KyrixFrontend(stack.service, dbox_scheme())
    frontend.load_initial_canvas()
    frontend.pan_by(1024, 0)
    print(frontend.average_response_ms(), "ms per interaction")
"""

from .config import (
    CacheConfig,
    ClusterConfig,
    INTERACTIVITY_BUDGET_MS,
    KyrixConfig,
    NetworkConfig,
    PrefetchConfig,
    StorageConfig,
)
from .cluster import ClusterRouter, ShardedCluster, build_cluster
from .core import (
    App,
    Application,
    CallablePlacement,
    Canvas,
    ColumnPlacement,
    Jump,
    JumpType,
    Layer,
    Renderer,
    Transform,
    Viewport,
)
from .compiler import CompiledApplication, compile_application, validate
from .client import ExplorationSession, KyrixFrontend
from .errors import KyrixError
from .server import FetchScheme, KyrixBackend, dbox_scheme, paper_schemes
from .serving import (
    CachingService,
    CoalescingService,
    DataService,
    MetricsService,
    TransportService,
    build_service,
)
from .storage import Database

__version__ = "1.0.0"

__all__ = [
    "App",
    "Application",
    "CacheConfig",
    "CachingService",
    "CallablePlacement",
    "Canvas",
    "ClusterConfig",
    "ClusterRouter",
    "CoalescingService",
    "DataService",
    "MetricsService",
    "ShardedCluster",
    "ColumnPlacement",
    "CompiledApplication",
    "Database",
    "TransportService",
    "build_service",
    "ExplorationSession",
    "FetchScheme",
    "INTERACTIVITY_BUDGET_MS",
    "Jump",
    "JumpType",
    "KyrixBackend",
    "KyrixConfig",
    "KyrixError",
    "KyrixFrontend",
    "Layer",
    "NetworkConfig",
    "PrefetchConfig",
    "Renderer",
    "StorageConfig",
    "Transform",
    "Viewport",
    "build_cluster",
    "compile_application",
    "dbox_scheme",
    "paper_schemes",
    "validate",
    "__version__",
]
