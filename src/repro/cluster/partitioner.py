"""Spatial partitioners: split a canvas into shard regions.

Two strategies are provided, selected by ``ClusterConfig.strategy``:

* :class:`GridPartitioner` (``"grid"``) tiles the canvas with a uniform
  ``columns x rows`` grid chosen to keep shard regions as square as the
  canvas aspect ratio allows.  Cheap and oblivious to the data.
* :class:`BalancedKDPartitioner` (``"kd"``) recursively splits the region
  currently holding the most objects at the median of the object centres
  along its longer axis, using a
  :class:`~repro.storage.statistics.SpatialDistribution` sampled from the
  canvas's placement tables.  On skewed datasets this equalises per-shard
  load where the grid would leave most shards idle.

A third partitioner exists outside the precompute-time registry:
:class:`LoadWeightedKDPartitioner` splits at *weighted* medians of a
:class:`LoadHistogram` — the observed request footprint recorded by the
router at serving time — instead of the static object distribution.  It is
what :class:`~repro.cluster.rebalancer.LoadRebalancer` uses to derive a new
partitioning from live traffic skew; it is not a ``ClusterConfig.strategy``
because the load signal only exists once the cluster has served requests.

All three produce a :class:`Partitioning`: an exact, gap-free cover of the
canvas by axis-aligned :class:`ShardRegion` rectangles.  Region edges are
shared, so an object whose bbox touches a boundary is *replicated* into
every shard it overlaps; the router deduplicates at gather time (see
:mod:`repro.cluster.router`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from statistics import median

from ..errors import KyrixError
from ..storage.rtree import Rect
from ..storage.statistics import SpatialDistribution

#: Registry of strategy names (mirrors ``ClusterConfig.strategy``).
STRATEGY_GRID = "grid"
STRATEGY_KD = "kd"
#: Strategy label of load-driven repartitionings (not a config strategy:
#: it needs live traffic, which precompute-time builds do not have).
STRATEGY_LOAD = "load_kd"


@dataclass(frozen=True)
class ShardRegion:
    """One shard's slice of a canvas."""

    shard_id: int
    rect: Rect

    def describe(self) -> dict[str, object]:
        return {"shard_id": self.shard_id, "rect": self.rect.as_tuple()}


@dataclass
class Partitioning:
    """A complete partitioning of one canvas into shard regions."""

    canvas_id: str
    strategy: str
    regions: list[ShardRegion] = field(default_factory=list)

    @property
    def shard_count(self) -> int:
        return len(self.regions)

    def shards_for_rect(self, rect: Rect) -> list[int]:
        """Ids of every shard whose region intersects ``rect`` (scatter set)."""
        return [
            region.shard_id
            for region in self.regions
            if region.rect.intersects(rect)
        ]

    def shard_for_point(self, x: float, y: float) -> int:
        """The shard owning canvas point ``(x, y)``.

        Boundary points belong to every adjacent region; the lowest shard id
        wins so the assignment stays deterministic.
        """
        for region in self.regions:
            if region.rect.contains_point(x, y):
                return region.shard_id
        raise KyrixError(
            f"point ({x}, {y}) outside every shard region of canvas "
            f"{self.canvas_id!r}"
        )

    def region(self, shard_id: int) -> ShardRegion:
        for candidate in self.regions:
            if candidate.shard_id == shard_id:
                return candidate
        raise KyrixError(f"no shard {shard_id} in canvas {self.canvas_id!r}")

    def describe(self) -> dict[str, object]:
        return {
            "canvas_id": self.canvas_id,
            "strategy": self.strategy,
            "regions": [region.describe() for region in self.regions],
        }


class GridPartitioner:
    """Uniform grid partitioning of a canvas."""

    strategy = STRATEGY_GRID

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise KyrixError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def partition(
        self,
        canvas_id: str,
        width: float,
        height: float,
        distribution: SpatialDistribution | None = None,
    ) -> Partitioning:
        columns, rows = self._grid_shape(width, height)
        cell_w = width / columns
        cell_h = height / rows
        regions: list[ShardRegion] = []
        for row in range(rows):
            for column in range(columns):
                shard_id = row * columns + column
                regions.append(
                    ShardRegion(
                        shard_id=shard_id,
                        rect=Rect(
                            column * cell_w,
                            row * cell_h,
                            width if column == columns - 1 else (column + 1) * cell_w,
                            height if row == rows - 1 else (row + 1) * cell_h,
                        ),
                    )
                )
        return Partitioning(canvas_id=canvas_id, strategy=self.strategy, regions=regions)

    def _grid_shape(self, width: float, height: float) -> tuple[int, int]:
        """The ``columns x rows`` factorisation closest to the canvas aspect."""
        best: tuple[float, int, int] | None = None
        for columns in range(1, self.shard_count + 1):
            if self.shard_count % columns:
                continue
            rows = self.shard_count // columns
            # Penalise elongation symmetrically: a 1:2 cell is as bad as
            # 2:1.  A collapsed axis acts as unit length, so a degenerate
            # canvas slices its live axis instead of dividing by zero.
            cell_aspect = ((width / columns) or 1.0) / ((height / rows) or 1.0)
            score = max(cell_aspect, 1.0 / cell_aspect)
            # <= so ties (e.g. a square canvas split in two) prefer columns.
            if best is None or score <= best[0]:
                best = (score, columns, rows)
        assert best is not None
        _, columns, rows = best
        return columns, rows


class BalancedKDPartitioner:
    """Median-split KD partitioning driven by the object distribution."""

    strategy = STRATEGY_KD

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise KyrixError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def partition(
        self,
        canvas_id: str,
        width: float,
        height: float,
        distribution: SpatialDistribution | None = None,
    ) -> Partitioning:
        if distribution is None or len(distribution) < 2 * self.shard_count:
            # Not enough signal for data-driven splits — fall back to the grid
            # so the cover stays exact and balanced by area.
            return GridPartitioner(self.shard_count).partition(canvas_id, width, height)

        # Each work item is (region, points inside it); repeatedly split the
        # most heavily loaded region at the median of its points.
        items: list[tuple[Rect, list[tuple[float, float]]]] = [
            (Rect(0.0, 0.0, width, height), list(distribution.points))
        ]
        while len(items) < self.shard_count:
            items.sort(key=lambda item: len(item[1]), reverse=True)
            rect, points = items.pop(0)
            axis = 0 if rect.width >= rect.height else 1
            split = self._split_coordinate(rect, points, axis)
            if axis == 0:
                left = Rect(rect.xmin, rect.ymin, split, rect.ymax)
                right = Rect(split, rect.ymin, rect.xmax, rect.ymax)
            else:
                left = Rect(rect.xmin, rect.ymin, rect.xmax, split)
                right = Rect(rect.xmin, split, rect.xmax, rect.ymax)
            items.append((left, [p for p in points if p[axis] <= split]))
            items.append((right, [p for p in points if p[axis] > split]))

        # Deterministic shard ids: order regions by position.
        items.sort(key=lambda item: (item[0].ymin, item[0].xmin))
        regions = [
            ShardRegion(shard_id=index, rect=rect)
            for index, (rect, _) in enumerate(items)
        ]
        return Partitioning(canvas_id=canvas_id, strategy=self.strategy, regions=regions)

    def _split_coordinate(
        self,
        rect: Rect,
        points: list[tuple[float, float]],
        axis: int,
    ) -> float:
        low = rect.xmin if axis == 0 else rect.ymin
        high = rect.xmax if axis == 0 else rect.ymax
        if points:
            split = float(median(p[axis] for p in points))
        else:
            split = (low + high) / 2.0
        # A median equal to a region edge would create a degenerate slab;
        # nudge to the midpoint instead.
        if not (low < split < high):
            split = (low + high) / 2.0
        return split


class LoadHistogram:
    """A bounded sample of weighted request-footprint centres on one canvas.

    The router records the centre of every scatter-gather's canvas
    rectangle here (weight 1 per request by default); the rebalancer feeds
    the histogram to :class:`LoadWeightedKDPartitioner` so shard boundaries
    move toward where the *traffic* is, not where the data sits.  With a
    positive ``limit`` the sample is a ring buffer — old observations fall
    off, so the histogram tracks recent load rather than all of history.
    """

    def __init__(self, limit: int = 0) -> None:
        self.limit = limit
        self._points: deque[tuple[float, float, float]] = deque(
            maxlen=limit if limit > 0 else None
        )

    def observe(self, x: float, y: float, weight: float = 1.0) -> None:
        if weight <= 0:
            return
        self._points.append((float(x), float(y), float(weight)))

    @property
    def points(self) -> tuple[tuple[float, float, float], ...]:
        """The ``(x, y, weight)`` samples, oldest first."""
        return tuple(self._points)

    def total_weight(self) -> float:
        return sum(weight for _, _, weight in self._points)

    def copy(self) -> "LoadHistogram":
        clone = LoadHistogram(self.limit)
        clone._points.extend(self._points)
        return clone

    def __len__(self) -> int:
        return len(self._points)


class LoadWeightedKDPartitioner:
    """KD splits at weighted medians of the observed request load.

    Where :class:`BalancedKDPartitioner` balances the *data* (object
    centres, equal counts per shard), this balances the *traffic*: the
    region carrying the most observed request weight is split at the
    weighted median of its samples, so a hotspot the size of one viewport
    ends up divided across several shards while cold regions merge into
    few large ones.  Any histogram — empty, degenerate, single-point —
    yields an exact, gap-free, overlap-free cover: regions that cannot be
    split data-sensibly fall back to midpoint splits.
    """

    strategy = STRATEGY_LOAD

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise KyrixError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def partition(
        self,
        canvas_id: str,
        width: float,
        height: float,
        load: LoadHistogram | None = None,
    ) -> Partitioning:
        # Clamp samples into the canvas: request rects may hang off the
        # edge (a viewport centred near a border), and a sample outside
        # every region would silently distort the weighted medians.
        points: list[tuple[float, float, float]] = []
        if load is not None:
            points = [
                (min(max(x, 0.0), width), min(max(y, 0.0), height), weight)
                for x, y, weight in load.points
                if weight > 0
            ]

        items: list[tuple[Rect, list[tuple[float, float, float]]]] = [
            (Rect(0.0, 0.0, width, height), points)
        ]
        while len(items) < self.shard_count:
            items.sort(
                key=lambda item: sum(weight for _, _, weight in item[1]),
                reverse=True,
            )
            rect, samples = items.pop(0)
            axis = 0 if rect.width >= rect.height else 1
            split = self._weighted_split(rect, samples, axis)
            if split is None:
                # Degenerate along the preferred axis; try the other one.
                axis = 1 - axis
                split = self._weighted_split(rect, samples, axis)
            if split is None:
                # A zero-area region (degenerate canvas, or a previous
                # zero-width cut).  Split it into two identical zero-area
                # slabs: the cover stays exact and the loop still makes
                # progress toward shard_count regions.
                axis = 0
                split = rect.xmin
            if axis == 0:
                left = Rect(rect.xmin, rect.ymin, split, rect.ymax)
                right = Rect(split, rect.ymin, rect.xmax, rect.ymax)
            else:
                left = Rect(rect.xmin, rect.ymin, rect.xmax, split)
                right = Rect(rect.xmin, split, rect.xmax, rect.ymax)
            items.append((left, [p for p in samples if p[axis] <= split]))
            items.append((right, [p for p in samples if p[axis] > split]))

        items.sort(key=lambda item: (item[0].ymin, item[0].xmin))
        regions = [
            ShardRegion(shard_id=index, rect=rect)
            for index, (rect, _) in enumerate(items)
        ]
        return Partitioning(canvas_id=canvas_id, strategy=self.strategy, regions=regions)

    def _weighted_split(
        self,
        rect: Rect,
        samples: list[tuple[float, float, float]],
        axis: int,
    ) -> float | None:
        """The weighted-median cut of ``rect`` along ``axis``.

        Returns ``None`` when the region is degenerate along the axis (no
        interior point exists); falls back to the midpoint when the samples
        give no usable interior split.
        """
        low = rect.xmin if axis == 0 else rect.ymin
        high = rect.xmax if axis == 0 else rect.ymax
        if not low < high:
            return None
        total = sum(weight for _, _, weight in samples)
        split: float | None = None
        if total > 0:
            ordered = sorted(samples, key=lambda p: p[axis])
            cumulative = 0.0
            for point in ordered:
                cumulative += point[2]
                if cumulative >= total / 2.0:
                    split = float(point[axis])
                    break
        if split is None or not (low < split < high):
            split = (low + high) / 2.0
        return split


def make_partitioner(
    strategy: str, shard_count: int
) -> GridPartitioner | BalancedKDPartitioner:
    """Build the partitioner named by ``ClusterConfig.strategy``."""
    if strategy == STRATEGY_GRID:
        return GridPartitioner(shard_count)
    if strategy == STRATEGY_KD:
        return BalancedKDPartitioner(shard_count)
    raise KyrixError(f"unknown partitioning strategy {strategy!r}")
