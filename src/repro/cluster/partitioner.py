"""Spatial partitioners: split a canvas into shard regions.

Two strategies are provided, selected by ``ClusterConfig.strategy``:

* :class:`GridPartitioner` (``"grid"``) tiles the canvas with a uniform
  ``columns x rows`` grid chosen to keep shard regions as square as the
  canvas aspect ratio allows.  Cheap and oblivious to the data.
* :class:`BalancedKDPartitioner` (``"kd"``) recursively splits the region
  currently holding the most objects at the median of the object centres
  along its longer axis, using a
  :class:`~repro.storage.statistics.SpatialDistribution` sampled from the
  canvas's placement tables.  On skewed datasets this equalises per-shard
  load where the grid would leave most shards idle.

Both produce a :class:`Partitioning`: an exact, gap-free cover of the canvas
by axis-aligned :class:`ShardRegion` rectangles.  Region edges are shared, so
an object whose bbox touches a boundary is *replicated* into every shard it
overlaps; the router deduplicates at gather time (see
:mod:`repro.cluster.router`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from ..errors import KyrixError
from ..storage.rtree import Rect
from ..storage.statistics import SpatialDistribution

#: Registry of strategy names (mirrors ``ClusterConfig.strategy``).
STRATEGY_GRID = "grid"
STRATEGY_KD = "kd"


@dataclass(frozen=True)
class ShardRegion:
    """One shard's slice of a canvas."""

    shard_id: int
    rect: Rect

    def describe(self) -> dict[str, object]:
        return {"shard_id": self.shard_id, "rect": self.rect.as_tuple()}


@dataclass
class Partitioning:
    """A complete partitioning of one canvas into shard regions."""

    canvas_id: str
    strategy: str
    regions: list[ShardRegion] = field(default_factory=list)

    @property
    def shard_count(self) -> int:
        return len(self.regions)

    def shards_for_rect(self, rect: Rect) -> list[int]:
        """Ids of every shard whose region intersects ``rect`` (scatter set)."""
        return [
            region.shard_id
            for region in self.regions
            if region.rect.intersects(rect)
        ]

    def shard_for_point(self, x: float, y: float) -> int:
        """The shard owning canvas point ``(x, y)``.

        Boundary points belong to every adjacent region; the lowest shard id
        wins so the assignment stays deterministic.
        """
        for region in self.regions:
            if region.rect.contains_point(x, y):
                return region.shard_id
        raise KyrixError(
            f"point ({x}, {y}) outside every shard region of canvas "
            f"{self.canvas_id!r}"
        )

    def region(self, shard_id: int) -> ShardRegion:
        for candidate in self.regions:
            if candidate.shard_id == shard_id:
                return candidate
        raise KyrixError(f"no shard {shard_id} in canvas {self.canvas_id!r}")

    def describe(self) -> dict[str, object]:
        return {
            "canvas_id": self.canvas_id,
            "strategy": self.strategy,
            "regions": [region.describe() for region in self.regions],
        }


class GridPartitioner:
    """Uniform grid partitioning of a canvas."""

    strategy = STRATEGY_GRID

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise KyrixError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def partition(
        self,
        canvas_id: str,
        width: float,
        height: float,
        distribution: SpatialDistribution | None = None,
    ) -> Partitioning:
        columns, rows = self._grid_shape(width, height)
        cell_w = width / columns
        cell_h = height / rows
        regions: list[ShardRegion] = []
        for row in range(rows):
            for column in range(columns):
                shard_id = row * columns + column
                regions.append(
                    ShardRegion(
                        shard_id=shard_id,
                        rect=Rect(
                            column * cell_w,
                            row * cell_h,
                            width if column == columns - 1 else (column + 1) * cell_w,
                            height if row == rows - 1 else (row + 1) * cell_h,
                        ),
                    )
                )
        return Partitioning(canvas_id=canvas_id, strategy=self.strategy, regions=regions)

    def _grid_shape(self, width: float, height: float) -> tuple[int, int]:
        """The ``columns x rows`` factorisation closest to the canvas aspect."""
        best: tuple[float, int, int] | None = None
        for columns in range(1, self.shard_count + 1):
            if self.shard_count % columns:
                continue
            rows = self.shard_count // columns
            # Penalise elongation symmetrically: a 1:2 cell is as bad as 2:1.
            cell_aspect = (width / columns) / (height / rows)
            score = max(cell_aspect, 1.0 / cell_aspect)
            # <= so ties (e.g. a square canvas split in two) prefer columns.
            if best is None or score <= best[0]:
                best = (score, columns, rows)
        assert best is not None
        _, columns, rows = best
        return columns, rows


class BalancedKDPartitioner:
    """Median-split KD partitioning driven by the object distribution."""

    strategy = STRATEGY_KD

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise KyrixError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def partition(
        self,
        canvas_id: str,
        width: float,
        height: float,
        distribution: SpatialDistribution | None = None,
    ) -> Partitioning:
        if distribution is None or len(distribution) < 2 * self.shard_count:
            # Not enough signal for data-driven splits — fall back to the grid
            # so the cover stays exact and balanced by area.
            return GridPartitioner(self.shard_count).partition(canvas_id, width, height)

        # Each work item is (region, points inside it); repeatedly split the
        # most heavily loaded region at the median of its points.
        items: list[tuple[Rect, list[tuple[float, float]]]] = [
            (Rect(0.0, 0.0, width, height), list(distribution.points))
        ]
        while len(items) < self.shard_count:
            items.sort(key=lambda item: len(item[1]), reverse=True)
            rect, points = items.pop(0)
            axis = 0 if rect.width >= rect.height else 1
            split = self._split_coordinate(rect, points, axis)
            if axis == 0:
                left = Rect(rect.xmin, rect.ymin, split, rect.ymax)
                right = Rect(split, rect.ymin, rect.xmax, rect.ymax)
            else:
                left = Rect(rect.xmin, rect.ymin, rect.xmax, split)
                right = Rect(rect.xmin, split, rect.xmax, rect.ymax)
            items.append((left, [p for p in points if p[axis] <= split]))
            items.append((right, [p for p in points if p[axis] > split]))

        # Deterministic shard ids: order regions by position.
        items.sort(key=lambda item: (item[0].ymin, item[0].xmin))
        regions = [
            ShardRegion(shard_id=index, rect=rect)
            for index, (rect, _) in enumerate(items)
        ]
        return Partitioning(canvas_id=canvas_id, strategy=self.strategy, regions=regions)

    def _split_coordinate(
        self,
        rect: Rect,
        points: list[tuple[float, float]],
        axis: int,
    ) -> float:
        low = rect.xmin if axis == 0 else rect.ymin
        high = rect.xmax if axis == 0 else rect.ymax
        if points:
            split = float(median(p[axis] for p in points))
        else:
            split = (low + high) / 2.0
        # A median equal to a region edge would create a degenerate slab;
        # nudge to the midpoint instead.
        if not (low < split < high):
            split = (low + high) / 2.0
        return split


def make_partitioner(
    strategy: str, shard_count: int
) -> GridPartitioner | BalancedKDPartitioner:
    """Build the partitioner named by ``ClusterConfig.strategy``."""
    if strategy == STRATEGY_GRID:
        return GridPartitioner(shard_count)
    if strategy == STRATEGY_KD:
        return BalancedKDPartitioner(shard_count)
    raise KyrixError(f"unknown partitioning strategy {strategy!r}")
