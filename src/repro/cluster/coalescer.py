"""Request coalescing: identical in-flight requests share one backend query.

When many concurrent sessions pan over the same region (the "heavy traffic"
scenario of the roadmap), the cluster would otherwise scatter-gather the
same tile/box once per session.  The coalescer keys in-flight work by the
request's cache key: the first session to ask becomes the *leader* and runs
the real query; sessions that ask for the same key while it is in flight
become *followers* and block until the leader's result is ready, then share
it.  This is the classic "single-flight" pattern (memcache lease /
Go ``singleflight``), applied in front of the scatter-gather fan-out.

The implementation is thread-safe so benchmark workloads can drive the
router from real concurrent sessions; in single-threaded use it degrades to
a no-op (every request is a leader).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Hashable, TypeVar

ResultT = TypeVar("ResultT")


@dataclass
class CoalescerStats:
    """How much duplicate in-flight work was avoided."""

    leaders: int = 0
    followers: int = 0

    @property
    def total(self) -> int:
        return self.leaders + self.followers

    def coalesce_rate(self) -> float:
        return self.followers / self.total if self.total else 0.0

    def reset(self) -> None:
        self.leaders = 0
        self.followers = 0


class _InFlight:
    """One leader's pending computation, awaited by its followers."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: object | None = None
        self.error: BaseException | None = None


class RequestCoalescer:
    """Single-flight deduplication of identical concurrent requests."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _InFlight] = {}
        self.stats = CoalescerStats()

    def coalesce(
        self, key: Hashable, compute: Callable[[], ResultT]
    ) -> tuple[ResultT, bool]:
        """Run ``compute`` once per concurrently in-flight ``key``.

        Returns ``(result, was_follower)``: followers receive the leader's
        result without ``compute`` running again.  Leader exceptions are
        re-raised in every waiting session.
        """
        with self._lock:
            pending = self._inflight.get(key)
            if pending is None:
                pending = _InFlight()
                self._inflight[key] = pending
                leader = True
                self.stats.leaders += 1
            else:
                leader = False
                self.stats.followers += 1

        if not leader:
            pending.event.wait()
            if pending.error is not None:
                raise pending.error
            return pending.result, True  # type: ignore[return-value]

        try:
            pending.result = compute()
        except BaseException as error:
            pending.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            pending.event.set()
        return pending.result, False
