"""Sharded multi-backend serving cluster with scatter-gather queries.

The paper's architecture serves every viewport request from one backend over
one database.  This package scales that architecture out while keeping the
tile/dbox request semantics byte-for-byte identical: a single-backend stack
and a cluster return exactly the same tuple sets for the same requests (the
parity tests in ``tests/cluster/`` assert this on both database designs).

**Partitioning** (:mod:`~repro.cluster.partitioner`).  Each canvas is split
into ``shard_count`` axis-aligned regions by one of two strategies: ``grid``
tiles the canvas uniformly, while ``kd`` performs balanced median splits
driven by the sampled object-density distribution
(:class:`repro.storage.statistics.SpatialDistribution`) so skewed datasets
spread evenly across shards.  Regions cover the canvas exactly and share
edges.

**Sharded precompute** (:mod:`~repro.cluster.sharded`).  After the normal
single-node precompute, :class:`~repro.cluster.sharded.ShardedIndexer`
routes every placement (or separable raw) row to each shard whose region its
bbox intersects — boundary-straddling objects are deliberately *replicated*
into all overlapping shards — and rebuilds the B-tree/R-tree indexes and
tuple–tile mapping tables per shard, giving each shard a self-contained
:class:`~repro.server.backend.KyrixBackend`.

**Scatter-gather serving** (:mod:`~repro.cluster.router`).  A
:class:`~repro.cluster.router.ClusterRouter` answers requests by fanning a
tile/box query out to only the shards overlapping its canvas rectangle, then
merges the shard responses and deduplicates replicated boundary tuples by
``tuple_id``.  The gathered ``query_ms`` is the critical path (slowest shard
plus merge time, modelling parallel shard execution) and per-shard timings
are surfaced in ``DataResponse.shard_ms`` so latency breakdowns stay
attributable.  Identical in-flight requests from concurrent sessions are
coalesced behind one scatter-gather
(:mod:`~repro.cluster.coalescer`), and a shared router LRU cache sits in
front of everything.

The router exposes the same serving surface as a backend, so
``KyrixFrontend`` / ``ExplorationSession`` accept either
(``ExplorationSession.from_backend(cluster.router, ...)``).  Configuration
lives in ``KyrixConfig.cluster`` (shard count, strategy, coalescing);
``benchmarks/bench_cluster_scaling.py`` measures throughput and latency
percentiles at 1/2/4/8 shards under concurrent pan workloads.
"""

from .builder import ShardedCluster, build_cluster
from .coalescer import CoalescerStats, RequestCoalescer
from .partitioner import (
    BalancedKDPartitioner,
    GridPartitioner,
    Partitioning,
    ShardRegion,
    make_partitioner,
)
from .router import ClusterRouter, ClusterStats
from .sharded import ShardedIndexer, ShardHandle

__all__ = [
    "BalancedKDPartitioner",
    "ClusterRouter",
    "ClusterStats",
    "CoalescerStats",
    "GridPartitioner",
    "Partitioning",
    "RequestCoalescer",
    "ShardHandle",
    "ShardRegion",
    "ShardedCluster",
    "ShardedIndexer",
    "build_cluster",
    "make_partitioner",
]
