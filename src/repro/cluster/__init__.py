"""Sharded multi-backend serving cluster with scatter-gather queries.

The paper's architecture serves every viewport request from one backend over
one database.  This package scales that architecture out while keeping the
tile/dbox request semantics byte-for-byte identical: a single-backend stack
and a cluster return exactly the same tuple sets for the same requests (the
parity tests in ``tests/cluster/`` assert this on both database designs).

**Partitioning** (:mod:`~repro.cluster.partitioner`).  Each canvas is split
into ``shard_count`` axis-aligned regions by one of two strategies: ``grid``
tiles the canvas uniformly, while ``kd`` performs balanced median splits
driven by the sampled object-density distribution
(:class:`repro.storage.statistics.SpatialDistribution`) so skewed datasets
spread evenly across shards.  Regions cover the canvas exactly and share
edges.

**Sharded precompute** (:mod:`~repro.cluster.sharded`).  After the normal
single-node precompute, :class:`~repro.cluster.sharded.ShardedIndexer`
routes every placement (or separable raw) row to each shard whose region its
bbox intersects — boundary-straddling objects are deliberately *replicated*
into all overlapping shards — and rebuilds the B-tree/R-tree indexes and
tuple–tile mapping tables per shard, giving each shard a self-contained
:class:`~repro.server.backend.KyrixBackend`.

**Scatter-gather serving** (:mod:`~repro.cluster.router`).  A
:class:`~repro.cluster.router.ClusterRouter` answers requests by fanning a
tile/box query out to only the shards overlapping its canvas rectangle —
in parallel on a thread pool when ``cluster.parallel_shards`` is set — then
merges the shard responses in shard-id order and deduplicates replicated
boundary tuples by ``tuple_id`` (the gathered object list is byte-identical
between the parallel and sequential paths).  The gathered ``query_ms`` is
the critical path (slowest shard plus merge time) and per-shard timings are
surfaced in ``DataResponse.shard_ms`` so latency breakdowns stay
attributable.  Identical in-flight requests from concurrent sessions are
coalesced behind one scatter-gather (via
:class:`~repro.serving.middleware.CoalescingService` /
:mod:`~repro.cluster.coalescer`), and a shared router LRU cache
(:class:`~repro.serving.middleware.CachingService`) sits in front of
everything.  With ``cluster.wire_shards`` (the default), every shard call
crosses the :mod:`repro.net.protocol` JSON encoding through a
:class:`~repro.serving.transport.TransportService`, so shard conversations
are exactly what a multi-node deployment would put on the network.

**Adaptive repartitioning** (:mod:`~repro.cluster.rebalancer`).  The router
records every request's canvas footprint into per-canvas
:class:`~repro.cluster.partitioner.LoadHistogram` ring buffers; a
:class:`~repro.cluster.rebalancer.LoadRebalancer` turns observed skew
(``max/mean`` per-shard load vs ``cluster.rebalance_skew_threshold``) into
a new :class:`~repro.cluster.partitioner.LoadWeightedKDPartitioner`
partitioning and migrates to it **online** — the new shard set builds
beside the serving one, the router's shard table swaps atomically, and the
old generation drains before closing, with byte-identical responses
throughout.

**Self-driving operation** (:mod:`~repro.cluster.autopilot`).  With
``cluster.autopilot.enabled`` (or ``build_cluster(..., autopilot=True)``)
a :class:`~repro.cluster.autopilot.ClusterAutopilot` background loop runs
the whole feedback cycle unattended: cooldown/hysteresis-gated skew
rebalances, shard-count autoscaling (2→4→8 under sustained load, back
down when idle), replica autoscaling from per-replica pressure, and
read-repair of replicas whose index checksums diverge.

The router implements the :class:`~repro.serving.base.DataService`
protocol, so ``KyrixFrontend`` / ``ExplorationSession`` drive a cluster
exactly like a single backend; build the whole stack with
:func:`repro.serving.build_service` rather than wiring routers by hand.
Configuration lives in ``KyrixConfig.cluster`` (shard count, strategy,
coalescing, parallel/wire flags);
``benchmarks/bench_cluster_scaling.py`` measures throughput and latency
percentiles at 1/2/4/8 shards under concurrent pan workloads.
"""

from .autopilot import AutopilotAction, ClusterAutopilot
from .builder import (
    ShardedCluster,
    build_cluster,
    replica_service,
    replica_stack,
    shard_service,
)
from .coalescer import CoalescerStats, RequestCoalescer
from .partitioner import (
    BalancedKDPartitioner,
    GridPartitioner,
    LoadHistogram,
    LoadWeightedKDPartitioner,
    Partitioning,
    ShardRegion,
    make_partitioner,
)
from .rebalancer import LoadRebalancer, RebalanceReport
from .router import ClusterRouter, ClusterStats, ShardTable
from .sharded import ShardedIndexer, ShardHandle

__all__ = [
    "AutopilotAction",
    "BalancedKDPartitioner",
    "ClusterAutopilot",
    "ClusterRouter",
    "ClusterStats",
    "CoalescerStats",
    "GridPartitioner",
    "LoadHistogram",
    "LoadRebalancer",
    "LoadWeightedKDPartitioner",
    "Partitioning",
    "RebalanceReport",
    "RequestCoalescer",
    "ShardHandle",
    "ShardRegion",
    "ShardTable",
    "ShardedCluster",
    "ShardedIndexer",
    "build_cluster",
    "make_partitioner",
    "replica_service",
    "replica_stack",
    "shard_service",
]
