"""Load-driven repartitioning with online shard migration.

The precompute-time partitioners place shard boundaries from *data*
density, fixed for the cluster's lifetime.  Real exploration traffic is
not data-shaped: a session panning over one city hammers the shard that
owns it while the rest idle.  This module closes the loop:

1. **Observe** — the router records every scatter-gather's canvas
   footprint into per-canvas :class:`~repro.cluster.partitioner.LoadHistogram`
   ring buffers, and counts per-shard traffic in
   ``ClusterStats.per_shard_requests``.
2. **Decide** — :meth:`LoadRebalancer.skew` reduces the per-shard counts
   to one number, ``max / mean`` (1.0 is perfect balance); traffic is
   *skewed* once it crosses ``cluster.rebalance_skew_threshold`` with at
   least ``cluster.rebalance_min_requests`` scatters observed.
3. **Repartition** — a
   :class:`~repro.cluster.partitioner.LoadWeightedKDPartitioner` derives a
   new :class:`~repro.cluster.partitioner.Partitioning` per canvas from
   the recorded load, so hot regions split across many shards and cold
   ones merge.
4. **Migrate online** — the new shard set is built *beside* the serving
   one (thread mode: fresh index stacks; process mode: fresh
   :class:`~repro.serving.worker.ShardSpec` dumps and a new
   :class:`~repro.serving.worker.WorkerPool` generation), then the
   router's shard table is swapped atomically
   (:meth:`~repro.cluster.router.ClusterRouter.swap_shards`) and the old
   generation is retired once its in-flight requests drain
   (:meth:`~repro.cluster.router.ClusterRouter.retire_table`).

Every shard set is rebuilt from the *same* source backend, so responses
are byte-identical before, during and after a swap — the parity suite
(``tests/cluster/test_rebalance_parity.py``) asserts exactly that across
topologies while a migration is racing the request stream.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from ..errors import KyrixError
from ..metrics.timer import Timer
from .partitioner import LoadHistogram, LoadWeightedKDPartitioner, Partitioning
from .sharded import ShardedIndexer

if TYPE_CHECKING:
    from .builder import ShardedCluster


@dataclass
class RebalanceReport:
    """What one :meth:`LoadRebalancer.rebalance` call did (or skipped)."""

    #: Whether the router's shard table was actually swapped.
    swapped: bool
    #: Why not, when it was not (``"below_threshold"`` / ``"single_shard"``
    #: / ``"too_few_requests"``); ``"rebalanced"`` when it was.
    reason: str
    #: The router epoch after the call.
    epoch: int
    skew_before: float
    shard_count_before: int
    shard_count_after: int
    #: Per-shard request counts that drove the decision (pre-swap ids).
    per_shard_requests: dict[int, int] = field(default_factory=dict)
    #: Wall-clock spent building the new shard set (indexes, specs, worker
    #: spawns) — all of it while the old generation kept serving.
    build_ms: float = 0.0
    #: Wall-clock from the atomic swap until the old generation drained
    #: and closed.
    drain_ms: float = 0.0
    #: Whether the old generation drained inside the timeout.
    drained: bool = True

    def describe(self) -> dict[str, Any]:
        return {
            "swapped": self.swapped,
            "reason": self.reason,
            "epoch": self.epoch,
            "skew_before": round(self.skew_before, 3),
            "shards": f"{self.shard_count_before}->{self.shard_count_after}",
            "build_ms": round(self.build_ms, 3),
            "drain_ms": round(self.drain_ms, 3),
            "drained": self.drained,
        }


class LoadRebalancer:
    """Snapshots live cluster load and migrates the shard set online.

    One rebalancer serves one :class:`~repro.cluster.builder.ShardedCluster`
    for its lifetime.  :meth:`rebalance` is safe to call from any thread —
    requests keep flowing during the whole build-and-swap — but calls are
    serialised against each other: two concurrent migrations would race
    on the worker-pool generation and double-build the shard set for no
    benefit.
    """

    def __init__(
        self,
        cluster: "ShardedCluster",
        *,
        skew_threshold: float | None = None,
        min_requests: int | None = None,
    ) -> None:
        if cluster.source is None:
            raise KyrixError(
                "online rebalancing needs the cluster's source backend "
                "(build the cluster with build_cluster / build_service)"
            )
        self.cluster = cluster
        self.router = cluster.router
        cluster_config = self.router.cluster_config
        self.skew_threshold = (
            skew_threshold
            if skew_threshold is not None
            else cluster_config.rebalance_skew_threshold
        )
        self.min_requests = (
            min_requests
            if min_requests is not None
            else cluster_config.rebalance_min_requests
        )
        self._migrate_lock = threading.Lock()

    # -- observing ---------------------------------------------------------------------

    def shard_loads(self) -> dict[int, int]:
        """Per-shard scatter counts since the last swap, zero-filled.

        Shards that received no traffic count as zeros — an idle shard is
        exactly what makes the cluster skewed, so leaving it out of the
        mean would hide the problem being measured.
        """
        stats = self.router.stats
        return {
            shard.shard_id: stats.per_shard_requests.get(shard.shard_id, 0)
            for shard in self.router.shards
        }

    def skew(self) -> float:
        """``max / mean`` of the per-shard loads (1.0 is perfect balance)."""
        loads = self.shard_loads()
        total = sum(loads.values())
        if not loads or total == 0:
            return 1.0
        mean = total / len(loads)
        return max(loads.values()) / mean

    def observed_requests(self) -> int:
        """Scatter-gathers observed since the last swap."""
        return sum(self.shard_loads().values())

    def should_rebalance(self) -> bool:
        """True when observed traffic is skewed enough to act on."""
        if self.router.shard_count < 2:
            return False
        if self.observed_requests() < self.min_requests:
            return False
        return self.skew() >= self.skew_threshold

    def propose_shard_count(
        self,
        requests_per_tick: float,
        *,
        min_shards: int = 1,
        max_shards: int = 8,
        grow_requests: int = 256,
        shrink_requests: int = 8,
    ) -> int:
        """The shard count the observed traffic volume argues for.

        Pure decision, no migration: sustained load (at least
        ``grow_requests`` scatter-gathers in the window) doubles the
        count, an idle window (at most ``shrink_requests``) halves it,
        anything in between keeps it — always clamped into
        ``[min_shards, max_shards]``.  Doubling/halving (2→4→8 rather
        than 2→3→4) keeps each step a genuine capacity change, so the
        autoscaler cannot creep one shard at a time around its own
        cooldown.
        """
        current = self.router.shard_count
        if requests_per_tick >= grow_requests:
            proposed = current * 2
        elif requests_per_tick <= shrink_requests:
            proposed = current // 2
        else:
            proposed = current
        return max(min_shards, min(max_shards, proposed))

    # -- migrating ---------------------------------------------------------------------

    def repartition(
        self, shard_count: int | None = None
    ) -> dict[str, Partitioning]:
        """Derive the load-weighted partitionings (no migration yet)."""
        shard_count = shard_count or self.router.shard_count
        partitioner = LoadWeightedKDPartitioner(shard_count)
        loads = self.router.load_snapshot()
        partitionings: dict[str, Partitioning] = {}
        for canvas_id, canvas_plan in self.router.compiled.canvases.items():
            partitionings[canvas_id] = partitioner.partition(
                canvas_id,
                canvas_plan.width,
                canvas_plan.height,
                loads.get(canvas_id, LoadHistogram()),
            )
        return partitionings

    def maybe_rebalance(
        self, shard_count: int | None = None
    ) -> RebalanceReport | None:
        """Rebalance only if :meth:`should_rebalance`; None when skipped."""
        if not self.should_rebalance():
            return None
        return self.rebalance(shard_count)

    def rebalance(
        self,
        shard_count: int | None = None,
        *,
        replicas: int | None = None,
        reason: str = "rebalanced",
    ) -> RebalanceReport:
        """Build a load-weighted shard set and swap it in online.

        ``shard_count`` defaults to the current count (a pure re-split);
        passing a different count re-scales the cluster in the same swap,
        and ``replicas`` likewise re-scales the per-shard replica count
        (the new generation builds with it, and the router's effective
        cluster config is updated so later decisions see it).  ``reason``
        labels the resulting :class:`RebalanceReport` (the autopilot
        stamps ``"grow"`` / ``"shrink"`` / ``"replica_scale"`` here).
        Requests keep being served by the old generation for the whole
        build; the swap itself is one atomic table replacement, after
        which the old generation drains and closes.
        """
        with self._migrate_lock:
            return self._rebalance_locked(shard_count, replicas, reason)

    def _rebalance_locked(
        self, shard_count: int | None, replicas: int | None, reason: str
    ) -> RebalanceReport:
        router = self.router
        cluster = self.cluster
        old_count = router.shard_count
        new_count = shard_count or old_count
        if new_count < 1:
            raise KyrixError(f"shard_count must be >= 1, got {new_count}")
        new_replicas = replicas or router.cluster_config.replicas
        skew_before = self.skew()
        loads_before = self.shard_loads()
        if (
            old_count == 1
            and new_count == 1
            and new_replicas == router.cluster_config.replicas
        ):
            # Single-shard no-op: there is nothing to move load between.
            return RebalanceReport(
                swapped=False,
                reason="single_shard",
                epoch=router.epoch,
                skew_before=skew_before,
                shard_count_before=old_count,
                shard_count_after=old_count,
                per_shard_requests=loads_before,
            )

        cluster_config = replace(
            router.cluster_config, shard_count=new_count, replicas=new_replicas
        )
        cluster_config.validate()
        source = cluster.source
        partitionings = self.repartition(new_count)

        # Build the new generation beside the serving one: shard databases
        # and indexes first, then the serving stacks (and, in process
        # mode, a fresh WorkerPool generation with its own spec dumps).
        from .builder import attach_shard_services, collect_replica_checksums

        build_timer = Timer()
        build_timer.start()
        indexer = ShardedIndexer(
            source.database,
            source.compiled,
            source.config,
            cluster_config=cluster_config,
        )
        shards, partitionings = indexer.build_shards(
            partitionings, tile_sizes=cluster.tile_sizes
        )
        pool = attach_shard_services(
            shards,
            cluster_config,
            source.config,
            source.compiled,
            generation=router.epoch + 1,
        )
        checksums = collect_replica_checksums(shards, cluster_config, pool)
        build_ms = build_timer.stop()

        # Atomic swap, then drain and retire the old generation.
        drain_timer = Timer()
        drain_timer.start()
        try:
            old_table = router.swap_shards(
                shards,
                partitionings,
                worker_pool=pool,
                replica_checksums=checksums,
            )
        except BaseException:
            # The router refused the swap (e.g. it closed while we were
            # building): the freshly built generation is ours to tear
            # down, or its worker processes would outlive everything.
            for shard in shards:
                shard.close()
            if pool is not None:
                pool.close()
            raise
        drained = router.retire_table(old_table)
        drain_ms = drain_timer.stop()

        # Keep the cluster handle's bookkeeping pointing at the live
        # generation (benchmarks and tests read cluster.shards), and the
        # router's effective config on the replica count it now serves.
        cluster.shards = shards
        cluster.partitionings = partitionings
        cluster.worker_pool = pool
        router.cluster_config = cluster_config
        return RebalanceReport(
            swapped=True,
            reason=reason,
            epoch=router.epoch,
            skew_before=skew_before,
            shard_count_before=old_count,
            shard_count_after=new_count,
            per_shard_requests=loads_before,
            build_ms=build_ms,
            drain_ms=drain_ms,
            drained=drained,
        )
