"""The cluster router: parallel scatter-gather over shard backends.

A :class:`ClusterRouter` implements the :class:`~repro.serving.base.DataService`
protocol (``handle`` / ``warm`` / ``canvas_info`` / ``layer_density`` plus
``compiled`` / ``config`` / ``stats`` / ``close``), so frontends and sessions
drive a cluster exactly like a single backend.  Internally it is a composed
middleware stack over the scatter-gather core::

    CachingService( CoalescingService( scatter-gather ) )

1. the shared router cache (keyed by the unsharded cache key) answers
   repeats (:class:`~repro.serving.middleware.CachingService`),
2. identical in-flight requests from concurrent sessions coalesce behind
   one scatter-gather (:class:`~repro.serving.middleware.CoalescingService`),
3. the scatter-gather computes the request's canvas rectangle and
   *scatters* the request only to the shards whose regions intersect it
   (``shard_id``-stamped copies, so per-shard backend caches stay
   disjoint), executing the shard queries **in parallel** on a thread pool
   when ``cluster.parallel_shards`` is set, and
4. *gathers* the shard responses in shard-id order, merging objects and
   deduplicating boundary-straddling tuples that were replicated into
   several shards — the gathered object list is byte-identical whether the
   shard queries ran in parallel or sequentially.

With ``cluster.replicas > 1`` each shard call lands on a
:class:`~repro.serving.replica.ReplicaService` that load-balances across
the shard's replicas and fails over on replica faults; every replica
attempt is reported back into :class:`ClusterStats` (``per_replica_requests``
/ ``per_replica_failures``) so outages stay attributable.

``DataResponse.query_ms`` of a gathered response is the critical path — the
slowest shard plus the router's merge time — which parallel execution makes
the *measured* shape of the request too, not just the modelled one.
``DataResponse.shard_ms`` keeps the per-shard timings so latency breakdowns
stay attributable.

Constructing a ``ClusterRouter`` directly as a frontend endpoint is
deprecated; use :func:`repro.serving.build_service`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from ..compiler.plan import CompiledApplication
from ..config import ClusterConfig, KyrixConfig
from ..errors import FetchError
from ..metrics.timer import Timer
from ..net.protocol import DataRequest, DataResponse
from ..server.cache import LRUCache
from ..server.tile import TileScheme
from ..serving.middleware import CachingService, CoalescingService
from ..storage.rtree import Rect
from ..telemetry import get_tracer
from .coalescer import RequestCoalescer
from .partitioner import LoadHistogram, Partitioning
from .sharded import ShardHandle


def replica_key(shard_id: int, replica_index: int) -> str:
    """The canonical ``"shard{S}/replica{R}"`` key of per-replica stats maps.

    Every producer of :class:`ClusterStats` per-replica entries must format
    keys through this helper so :meth:`ClusterStats.divergent_replicas`
    can parse them back.
    """
    return f"shard{shard_id}/replica{replica_index}"


@dataclass
class ShardTable:
    """One immutable generation of the router's shard topology.

    The scatter-gather core reads the table exactly once per request and
    uses it for the whole fan-out, so an online rebalance can swap the
    router's current table atomically while requests already in flight
    keep the generation they started on.  ``inflight`` counts those
    requests (guarded by the router's table lock); the old generation is
    only closed once it drains.
    """

    shards: list[ShardHandle]
    partitionings: dict[str, Partitioning]
    epoch: int = 0
    #: The worker-process pool serving this generation's shards, when it
    #: was built with ``worker_mode="processes"``.
    worker_pool: Any = None
    #: Scatter-gathers currently executing against this table.
    inflight: int = 0

    def close(self) -> None:
        """Close this generation's shard stacks and worker pool."""
        for shard in self.shards:
            shard.close()
        if self.worker_pool is not None:
            self.worker_pool.close()


@dataclass
class ClusterStats:
    """Aggregate counters over the router's lifetime."""

    requests: int = 0
    cache_hits: int = 0
    coalesced_requests: int = 0
    scatter_gathers: int = 0
    shard_queries: int = 0
    duplicates_removed: int = 0
    objects_returned: int = 0
    per_shard_requests: dict[int, int] = field(default_factory=dict)
    #: How many scatter-gathers touched exactly N shards (fan-out histogram).
    fanout: dict[int, int] = field(default_factory=dict)
    #: Per-replica attempt counts, keyed ``"shard{S}/replica{R}"`` (only
    #: populated when shards serve through a replica set).
    per_replica_requests: dict[str, int] = field(default_factory=dict)
    #: Per-replica failed-attempt counts, same keys.
    per_replica_failures: dict[str, int] = field(default_factory=dict)
    #: Content hash of each replica's shard index, keyed
    #: ``"shard{S}/replica{R}"`` (recorded at build time).  In-process
    #: replicas share the shard's immutable index, so their checksums are
    #: equal by construction; process workers hash their own rebuilt copy,
    #: making a corrupted or stale replica index detectable.
    replica_checksums: dict[str, str] = field(default_factory=dict)
    #: How many online rebalances this router has performed (each swap of
    #: the shard table increments the epoch by one).
    rebalance_epochs: int = 0

    def record_replica_attempt(self, shard_id: int, replica_index: int, ok: bool) -> None:
        key = replica_key(shard_id, replica_index)
        self.per_replica_requests[key] = self.per_replica_requests.get(key, 0) + 1
        if not ok:
            self.per_replica_failures[key] = self.per_replica_failures.get(key, 0) + 1

    def record_scatter(self, shard_ids: list[int]) -> None:
        self.scatter_gathers += 1
        self.shard_queries += len(shard_ids)
        self.fanout[len(shard_ids)] = self.fanout.get(len(shard_ids), 0) + 1
        for shard_id in shard_ids:
            self.per_shard_requests[shard_id] = (
                self.per_shard_requests.get(shard_id, 0) + 1
            )

    def average_fanout(self) -> float:
        return self.shard_queries / self.scatter_gathers if self.scatter_gathers else 0.0

    def divergent_replicas(self) -> dict[int, dict[str, str]]:
        """Shards whose replicas do not all hold the same index content.

        Returns ``{shard_id: {"shard{S}/replica{R}": checksum, ...}}`` for
        every shard with more than one distinct replica checksum — empty
        when all replica sets agree (the healthy state).
        """
        by_shard: dict[int, dict[str, str]] = {}
        for key, checksum in self.replica_checksums.items():
            shard_id = int(key.split("/", 1)[0].removeprefix("shard"))
            by_shard.setdefault(shard_id, {})[key] = checksum
        return {
            shard_id: checksums
            for shard_id, checksums in by_shard.items()
            if len(set(checksums.values())) > 1
        }

    def reset(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.coalesced_requests = 0
        self.scatter_gathers = 0
        self.shard_queries = 0
        self.duplicates_removed = 0
        self.objects_returned = 0
        self.per_shard_requests.clear()
        self.fanout.clear()
        self.per_replica_requests.clear()
        self.per_replica_failures.clear()
        # replica_checksums and rebalance_epochs describe the built
        # topology (and its history), not traffic, so a stats reset
        # deliberately leaves them in place.


class _ScatterGatherService:
    """The router's terminal :class:`DataService`: one scatter-gather per call."""

    def __init__(self, router: "ClusterRouter") -> None:
        self.router = router

    @property
    def compiled(self) -> CompiledApplication:
        return self.router.compiled

    @property
    def config(self) -> KyrixConfig:
        return self.router.config

    @property
    def stats(self) -> ClusterStats:
        return self.router.stats

    def handle(self, request: DataRequest) -> DataResponse:
        return self.router._scatter_gather(request)

    def warm(self, request: DataRequest) -> None:
        self.router._scatter_gather(request)

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        return self.router.canvas_info(canvas_id)

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return self.router.layer_density(canvas_id, layer_index)

    def close(self) -> None:
        pass


class ClusterRouter:
    """Routes data requests across a set of shard backends."""

    def __init__(
        self,
        shards: list[ShardHandle],
        partitionings: dict[str, Partitioning],
        compiled: CompiledApplication,
        config: KyrixConfig | None = None,
        *,
        cluster_config: ClusterConfig | None = None,
        coalescing: bool | None = None,
        parallel: bool | None = None,
    ) -> None:
        if not shards:
            raise FetchError("a cluster needs at least one shard")
        # The shard topology lives in a swappable ShardTable so an online
        # rebalance can replace it atomically (see swap_shards).
        self._table = ShardTable(shards=shards, partitionings=partitionings)
        self._table_lock = threading.Lock()
        self._table_drained = threading.Condition(self._table_lock)
        self.compiled = compiled
        self.config = config or (compiled.spec.config if compiled.spec else KyrixConfig())
        # The effective cluster config may carry per-build overrides; the
        # indexer and router must read the same one.
        cluster_config = cluster_config or self.config.cluster
        self.cluster_config = cluster_config
        if coalescing is None:
            coalescing = cluster_config.coalescing
        if parallel is None:
            parallel = cluster_config.parallel_shards
        self._parallel_requested = parallel
        self.parallel = parallel and len(shards) > 1
        # Per-canvas request-footprint histograms feeding the load-driven
        # repartitioner (bounded ring buffers; see LoadRebalancer).
        self._load_lock = threading.Lock()
        self.canvas_loads: dict[str, LoadHistogram] = {
            canvas_id: LoadHistogram(cluster_config.rebalance_load_samples)
            for canvas_id in partitionings
        }
        cache_entries = (
            cluster_config.router_cache_entries if self.config.cache.enabled else 0
        )
        self.cache: LRUCache[DataResponse] = LRUCache(cache_entries)
        self.stats = ClusterStats()
        # Counter updates are read-modify-write; concurrent sessions are the
        # router's normal traffic, so they must not lose increments.
        self._stats_lock = threading.Lock()
        # The middleware stack over the scatter-gather core.  ``self.cache``
        # and ``self.coalescer`` alias the middleware internals so existing
        # callers (tests, benchmarks) keep their handles.
        stack = _ScatterGatherService(self)
        self.coalescer: RequestCoalescer | None = None
        if coalescing:
            coalescing_layer = CoalescingService(stack)
            self.coalescer = coalescing_layer.coalescer
            stack = coalescing_layer
        self._stack = CachingService(stack, cache=self.cache)
        # The scatter executor is created lazily on the first multi-shard
        # fan-out (many routers are built for single requests or ablations).
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._closed = False
        #: Back-reference to the ShardedCluster that built this router
        #: (set by :func:`repro.cluster.builder.build_cluster`).
        self.cluster: Any = None
        # Shards fronted by a replica set report every attempt back here, so
        # ClusterStats attributes traffic and failures per replica.
        from ..serving.replica import ReplicaService

        for shard in shards:
            layer = getattr(shard, "service", None)
            if isinstance(layer, ReplicaService):
                layer.observer = self._replica_observer(shard.shard_id)

    @property
    def shards(self) -> list[ShardHandle]:
        """The current generation's shard handles (see :class:`ShardTable`)."""
        return self._table.shards

    @property
    def partitionings(self) -> dict[str, Partitioning]:
        """The current generation's per-canvas partitionings."""
        return self._table.partitionings

    @property
    def epoch(self) -> int:
        """The current shard-table generation (0 until the first rebalance)."""
        return self._table.epoch

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def children(self) -> tuple[Any, ...]:
        """The per-shard serving stacks, traversed by :func:`~repro.serving.base.unwrap`.

        Makes ``unwrap(router, ReplicaService)`` (or any layer inside a
        shard's stack) reachable from the cluster's outermost service.
        """
        return tuple(
            shard.service if shard.service is not None else shard.backend
            for shard in self.shards
        )

    def _replica_observer(self, shard_id: int):
        def record(replica_index: int, ok: bool) -> None:
            with self._stats_lock:
                self.stats.record_replica_attempt(shard_id, replica_index, ok)

        return record

    def replica_sets(self) -> dict[int, Any]:
        """The shards' :class:`~repro.serving.replica.ReplicaService` layers."""
        from ..serving.replica import ReplicaService

        return {
            shard.shard_id: shard.service
            for shard in self.shards
            if isinstance(getattr(shard, "service", None), ReplicaService)
        }

    # -- request handling --------------------------------------------------------------

    def handle(self, request: DataRequest) -> DataResponse:
        """Answer one data request via cache, coalescing or scatter-gather."""
        with get_tracer().span(
            "request",
            canvas=request.canvas_id,
            granularity=request.granularity,
            design=request.design,
        ) as span:
            with self._stats_lock:
                self.stats.requests += 1
            self._resolve_layer(request)
            response = self._stack.handle(request)
            if response.from_cache:
                with self._stats_lock:
                    self.stats.cache_hits += 1
            elif response.coalesced:
                with self._stats_lock:
                    self.stats.coalesced_requests += 1
            span.set_attribute("from_cache", response.from_cache)
            span.set_attribute("coalesced", response.coalesced)
            return response

    def warm(self, request: DataRequest) -> None:
        """Execute a request purely to populate the router cache (prefetch)."""
        if self.cache.peek(request.cache_key()) is None:
            self.handle(request)

    def close(self) -> None:
        """Shut down the scatter executor, shard stacks and worker processes."""
        # Stop the autopilot first: its control loop calls back into the
        # router (rebalances, replica swaps), so it must be parked before
        # the serving structures it steers are torn down.
        autopilot = getattr(self.cluster, "autopilot", None)
        if autopilot is not None:
            autopilot.close()
        with self._executor_lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True)
        # Serialise with swap_shards: reading the table under the table
        # lock guarantees we close whichever generation a concurrent
        # rebalance installed (or that the rebalance failed its closed
        # check before installing anything).
        with self._table_lock:
            table = self._table
        table.close()
        # Callers that only hold the service stack (build_service output)
        # must still be able to drain a process-worker topology.  After a
        # rebalance the cluster handle's pool is the table's pool, whose
        # close() is idempotent; this covers pre-rebalance builds where the
        # pool was only recorded on the cluster.
        pool = getattr(self.cluster, "worker_pool", None)
        if pool is not None and pool is not table.worker_pool:
            pool.close()

    # -- online rebalancing seam -------------------------------------------------------

    def swap_shards(
        self,
        shards: list[ShardHandle],
        partitionings: dict[str, Partitioning],
        *,
        worker_pool: Any = None,
        replica_checksums: dict[str, str] | None = None,
    ) -> ShardTable:
        """Atomically replace the shard table with a new generation.

        Requests that already picked up the old table finish against it
        (the caller retires it with :meth:`retire_table` once it drains);
        every request arriving after this call scatters over the new
        shards.  Returns the retired :class:`ShardTable`.

        Traffic counters keyed by shard or replica id
        (``per_shard_requests`` / ``fanout`` / ``per_replica_*``) are
        cleared: shard ids name *regions*, and the new generation's
        regions are different objects — mixing the two would make the
        post-rebalance skew unreadable.  The per-canvas load histograms
        reset for the same reason: the next split must be driven by
        traffic on the new boundaries, not by the hotspot this swap just
        resolved.  ``replica_checksums`` is replaced with the new
        generation's hashes and ``rebalance_epochs`` increments.
        """
        if not shards:
            raise FetchError("a rebalance needs at least one shard")
        from ..serving.replica import ReplicaService

        for shard in shards:
            layer = getattr(shard, "service", None)
            if isinstance(layer, ReplicaService):
                layer.observer = self._replica_observer(shard.shard_id)
        with self._table_lock:
            # Refuse to install shards on a closed router: close() captures
            # the current table under this same lock, so checking here
            # guarantees either close() sees the new table (and closes it)
            # or this swap fails before installing anything — a rebalance
            # racing a shutdown must not strand a worker-pool generation.
            with self._executor_lock:
                if self._closed:
                    raise FetchError("cannot swap shards on a closed router")
                # The executor was sized for the old shard count; drop it
                # so the next fan-out rebuilds one for the new topology.
                executor, self._executor = self._executor, None
            old = self._table
            self._table = ShardTable(
                shards=shards,
                partitionings=partitionings,
                epoch=old.epoch + 1,
                worker_pool=worker_pool,
            )
            self.parallel = self._parallel_requested and len(shards) > 1
            # Clear per-shard/per-replica traffic inside the table lock:
            # no request can pick up the new table until the lock drops,
            # so the new epoch's counters start exactly empty, and
            # old-generation stragglers skip recording via the stale-table
            # guard in _scatter_gather_on.
            with self._stats_lock:
                self.stats.rebalance_epochs += 1
                self.stats.per_shard_requests.clear()
                self.stats.fanout.clear()
                self.stats.per_replica_requests.clear()
                self.stats.per_replica_failures.clear()
                self.stats.replica_checksums = dict(replica_checksums or {})
            # The load histograms drove the split that produced this
            # generation; the *next* boundary decision must be shaped by
            # traffic the new boundaries actually see, not by hotspots
            # this swap already resolved — a stale histogram would pin
            # every future split onto the old hot region.
            with self._load_lock:
                for canvas_id, load in self.canvas_loads.items():
                    self.canvas_loads[canvas_id] = LoadHistogram(load.limit)
        if executor is not None:
            # Old-generation scatters may still hold futures; wait=False
            # lets them finish on the dying executor while new requests
            # get a fresh one (a submit that loses this race falls back to
            # the sequential path — see _scatter_gather_on).
            executor.shutdown(wait=False)
        return old

    def retire_table(self, table: ShardTable, *, timeout_s: float | None = None) -> bool:
        """Wait for a swapped-out table's in-flight requests, then close it.

        Returns ``True`` when the table drained within ``timeout_s``
        (default ``cluster.rebalance_drain_timeout_s``); on timeout the
        table is closed anyway — serving a request on a closing stack is
        the lesser evil next to leaking worker processes.
        """
        if timeout_s is None:
            timeout_s = self.cluster_config.rebalance_drain_timeout_s
        deadline = time.monotonic() + timeout_s
        with self._table_lock:
            while table.inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                # wait() releases the lock while blocking, so decrements
                # in _scatter_gather can proceed.
                self._table_drained.wait(remaining)
            drained = table.inflight == 0
        table.close()
        return drained

    def divergent_replicas(self) -> dict[int, dict[str, str]]:
        """A consistent snapshot of :meth:`ClusterStats.divergent_replicas`."""
        with self._stats_lock:
            return self.stats.divergent_replicas()

    def record_replica_checksum(
        self, shard_id: int, replica_index: int, checksum: str
    ) -> str:
        """Record one replica's index hash; returns the previous one.

        The write seam read-repair (and the :func:`~repro.serving.faults.diverge_replica`
        test seam) go through, so checksum updates happen under the same
        lock every other stats mutation takes.  Returns the hash the entry
        previously held (empty string when none was recorded).
        """
        key = replica_key(shard_id, replica_index)
        with self._stats_lock:
            previous = self.stats.replica_checksums.get(key, "")
            self.stats.replica_checksums[key] = checksum
        return previous

    def load_snapshot(self) -> dict[str, LoadHistogram]:
        """A copy of the per-canvas request-load histograms (for rebalancing)."""
        with self._load_lock:
            return {
                canvas_id: load.copy()
                for canvas_id, load in self.canvas_loads.items()
            }

    # -- scatter-gather ----------------------------------------------------------------

    def _shard_executor(self) -> ThreadPoolExecutor | None:
        if not self.parallel:
            return None
        with self._executor_lock:
            if self._executor is None and not self._closed:
                # ``max_parallel_shards`` is the documented pool size; it
                # may exceed the shard count on purpose — concurrent
                # sessions each fan out, so an operator sizes the pool
                # for clients x shards, not for one scatter at a time.
                workers = self.cluster_config.max_parallel_shards or self.shard_count
                self._executor = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="kyrix-shard",
                )
            return self._executor

    def _query_shard(
        self,
        table: ShardTable,
        shard_id: int,
        request: DataRequest,
        trace_context: dict[str, Any] | None = None,
    ) -> DataResponse:
        # ``attach`` joins this (possibly pool) thread to the caller's
        # trace so shard spans nest under the scatter span regardless of
        # which thread runs them; a no-op when the context is None.
        tracer = get_tracer()
        with tracer.attach(trace_context):
            with tracer.span("shard", shard_id=shard_id):
                return table.shards[shard_id].handle(request.for_shard(shard_id))

    def _scatter_gather(self, request: DataRequest) -> DataResponse:
        # One table read per request: the whole fan-out (shard-id
        # resolution AND shard calls) uses the same generation, so an
        # online swap between the two steps cannot mis-route.
        with self._table_lock:
            table = self._table
            table.inflight += 1
        try:
            return self._scatter_gather_on(table, request)
        finally:
            with self._table_lock:
                table.inflight -= 1
                if table.inflight == 0:
                    self._table_drained.notify_all()

    def _scatter_gather_on(
        self, table: ShardTable, request: DataRequest
    ) -> DataResponse:
        with get_tracer().span("scatter", epoch=table.epoch) as scatter_span:
            return self._scatter_gather_traced(table, request, scatter_span)

    def _scatter_gather_traced(
        self, table: ShardTable, request: DataRequest, scatter_span: Any
    ) -> DataResponse:
        rect = self.request_rect(request)
        partitioning = table.partitionings[request.canvas_id]
        shard_ids = partitioning.shards_for_rect(rect)
        scatter_span.set_attribute("fanout", len(shard_ids))
        with self._stats_lock:
            # Shard ids name *regions* of one epoch: a straggler still
            # finishing against a swapped-out table must not count its old
            # region ids against the new epoch's cleared counters.
            if table is self._table:
                self.stats.record_scatter(shard_ids)
        center_x, center_y = rect.center
        with self._load_lock:
            load = self.canvas_loads.get(request.canvas_id)
            if load is None:
                load = self.canvas_loads[request.canvas_id] = LoadHistogram(
                    self.cluster_config.rebalance_load_samples
                )
            load.observe(center_x, center_y)

        executor = self._shard_executor() if len(shard_ids) > 1 else None
        # Captured once on the scattering thread so every fan-out thread
        # parents its shard span under this request's scatter span.
        trace_context = get_tracer().current_context()
        shard_responses: list[DataResponse] | None = None
        if executor is not None:
            try:
                futures = [
                    executor.submit(
                        self._query_shard, table, shard_id, request, trace_context
                    )
                    for shard_id in shard_ids
                ]
            except RuntimeError:
                # A concurrent swap shut this executor down between our
                # fetch and the submit; any futures that did get in still
                # run (idempotent reads) but are discarded — this request
                # simply degrades to the sequential path below.
                shard_responses = None
            else:
                shard_responses = [future.result() for future in futures]
        if shard_responses is None:
            shard_responses = [
                self._query_shard(table, shard_id, request, trace_context)
                for shard_id in shard_ids
            ]

        # Gather into *canonical* order: objects sort by their dedup
        # identity, so the merged list is byte-identical between the
        # parallel and sequential paths AND invariant under the
        # partitioning itself — an online rebalance can re-split shards
        # without changing a single response byte (per-shard engines
        # return rows in index order, which depends on what rows the
        # shard holds; the sort erases that dependence).
        shard_ms: dict[str, float] = {}
        slowest_ms = 0.0
        merge_ms = 0.0
        queries = 0
        received = 0
        if len(shard_ids) == 1:
            # Common case (fan-out 1): no replica can appear twice, so skip
            # the dedup merge entirely.  Sorted into a fresh list: the
            # shard's response (possibly a cached object) stays untouched.
            only = shard_responses[0]
            shard_ms[f"shard{shard_ids[0]}"] = only.query_ms
            slowest_ms = only.query_ms
            queries = only.queries_issued
            received = len(only.objects)
            objects = self._canonical_order(list(only.objects))
        else:
            merged: dict[Any, dict[str, Any]] = {}
            for shard_id, shard_response in zip(shard_ids, shard_responses):
                shard_ms[f"shard{shard_id}"] = shard_response.query_ms
                slowest_ms = max(slowest_ms, shard_response.query_ms)
                queries += shard_response.queries_issued
                received += len(shard_response.objects)
                timer = Timer()
                timer.start()
                for obj in shard_response.objects:
                    merged.setdefault(self._identity(obj), obj)
                merge_ms += timer.stop()
            timer = Timer()
            timer.start()
            objects = self._canonical_order(list(merged.values()))
            merge_ms += timer.stop()

        response = DataResponse(
            request=request,
            objects=objects,
            # Shards execute in parallel: the gathered query time is the
            # slowest shard (critical path) plus the merge overhead.
            query_ms=slowest_ms + merge_ms,
            from_cache=False,
            queries_issued=queries,
            shard_ms=shard_ms,
        )
        with self._stats_lock:
            self.stats.duplicates_removed += received - len(objects)
            self.stats.objects_returned += len(objects)
        return response

    def request_rect(self, request: DataRequest) -> Rect:
        """The canvas rectangle a request covers (scatter footprint)."""
        canvas_plan = self.compiled.canvas_plan(request.canvas_id)
        if request.granularity == "tile":
            if request.tile_id is None or not request.tile_size:
                raise FetchError("tile requests need tile_id and tile_size")
            scheme = TileScheme(
                canvas_plan.width, canvas_plan.height, request.tile_size
            )
            return scheme.tile_rect(request.tile_id)
        if request.granularity == "box":
            if None in (request.xmin, request.ymin, request.xmax, request.ymax):
                raise FetchError("box requests need xmin/ymin/xmax/ymax")
            return Rect(request.xmin, request.ymin, request.xmax, request.ymax)
        raise FetchError(f"unknown granularity {request.granularity!r}")

    @staticmethod
    def _identity(obj: dict[str, Any]) -> Any:
        """Dedup key for a gathered object: ``tuple_id`` when present."""
        tuple_id = obj.get("tuple_id")
        if tuple_id is not None:
            return tuple_id
        return tuple(
            (name, tuple(value) if isinstance(value, list) else value)
            for name, value in sorted(obj.items())
        )

    @classmethod
    def _canonical_order(cls, objects: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Sort gathered objects by dedup identity (in place; returned).

        The order every response leaves the router in, whatever the
        partitioning, topology or rebalance epoch that produced it.
        """
        try:
            objects.sort(key=cls._identity)
        except TypeError:
            # Mixed identity types (e.g. int and str tuple_ids in one
            # layer) have no natural order; repr gives a deterministic one.
            objects.sort(key=lambda obj: repr(cls._identity(obj)))
        return objects

    # -- metadata for the frontend -----------------------------------------------------

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        """Canvas summary plus the shard regions serving it."""
        table = self._table  # one read: shards and regions from one epoch
        info = table.shards[0].canvas_info(canvas_id)
        info["shards"] = table.partitionings[canvas_id].describe()["regions"]
        return info

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        """Average objects per canvas pixel² for one layer.

        Summed over shards, so boundary replicas are counted once per shard
        that stores them — a slight overestimate on heavily straddled data.
        """
        return sum(
            shard.layer_density(canvas_id, layer_index) for shard in self.shards
        )

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the shared router cache."""
        return self.cache.stats.snapshot()

    def describe(self) -> dict[str, Any]:
        """Cluster topology: shard row counts and per-canvas regions."""
        return {
            "shard_count": self.shard_count,
            "rebalance_epoch": self._table.epoch,
            "parallel": self.parallel,
            "wire_shards": self.cluster_config.wire_shards,
            "replicas": self.cluster_config.replicas,
            "replica_policy": self.cluster_config.replica_policy,
            "worker_mode": self.cluster_config.worker_mode,
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "rows_by_table": dict(shard.rows_by_table),
                }
                for shard in self.shards
            ],
            "partitionings": {
                canvas_id: partitioning.describe()
                for canvas_id, partitioning in self.partitionings.items()
            },
        }

    # -- helpers -----------------------------------------------------------------------

    def _resolve_layer(self, request: DataRequest) -> None:
        self.compiled.require_layer_plan(request.canvas_id, request.layer_index)
