"""The cluster router: scatter-gather over shard backends.

A :class:`ClusterRouter` exposes the same serving surface as
:class:`~repro.server.backend.KyrixBackend` (``handle`` / ``warm`` /
``canvas_info`` / ``layer_density`` plus ``compiled``, ``config`` and
``cache``), so frontends and sessions can be pointed at a cluster without
changes.  For each :class:`~repro.net.protocol.DataRequest` it:

1. consults the shared router cache (keyed by the unsharded cache key),
2. coalesces identical in-flight requests from concurrent sessions behind
   one scatter-gather (see :mod:`repro.cluster.coalescer`),
3. computes the request's canvas rectangle and *scatters* the request only
   to the shards whose regions intersect it (``shard_id``-stamped copies, so
   per-shard backend caches stay disjoint), and
4. *gathers* the shard responses, merging objects and deduplicating
   boundary-straddling tuples that were replicated into several shards.

``DataResponse.query_ms`` of a gathered response is the critical path — the
slowest shard plus the router's merge time, modelling shards that execute in
parallel — while ``DataResponse.shard_ms`` keeps the per-shard timings so
latency breakdowns stay attributable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from ..compiler.plan import CompiledApplication
from ..config import ClusterConfig, KyrixConfig
from ..errors import FetchError
from ..metrics.timer import Timer
from ..net.protocol import DataRequest, DataResponse
from ..server.cache import LRUCache
from ..server.tile import TileScheme
from ..storage.rtree import Rect
from .coalescer import RequestCoalescer
from .partitioner import Partitioning
from .sharded import ShardHandle


@dataclass
class ClusterStats:
    """Aggregate counters over the router's lifetime."""

    requests: int = 0
    cache_hits: int = 0
    coalesced_requests: int = 0
    scatter_gathers: int = 0
    shard_queries: int = 0
    duplicates_removed: int = 0
    objects_returned: int = 0
    per_shard_requests: dict[int, int] = field(default_factory=dict)
    #: How many scatter-gathers touched exactly N shards (fan-out histogram).
    fanout: dict[int, int] = field(default_factory=dict)

    def record_scatter(self, shard_ids: list[int]) -> None:
        self.scatter_gathers += 1
        self.shard_queries += len(shard_ids)
        self.fanout[len(shard_ids)] = self.fanout.get(len(shard_ids), 0) + 1
        for shard_id in shard_ids:
            self.per_shard_requests[shard_id] = (
                self.per_shard_requests.get(shard_id, 0) + 1
            )

    def average_fanout(self) -> float:
        return self.shard_queries / self.scatter_gathers if self.scatter_gathers else 0.0

    def reset(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.coalesced_requests = 0
        self.scatter_gathers = 0
        self.shard_queries = 0
        self.duplicates_removed = 0
        self.objects_returned = 0
        self.per_shard_requests.clear()
        self.fanout.clear()


class ClusterRouter:
    """Routes data requests across a set of shard backends."""

    def __init__(
        self,
        shards: list[ShardHandle],
        partitionings: dict[str, Partitioning],
        compiled: CompiledApplication,
        config: KyrixConfig | None = None,
        *,
        cluster_config: ClusterConfig | None = None,
        coalescing: bool | None = None,
    ) -> None:
        if not shards:
            raise FetchError("a cluster needs at least one shard")
        self.shards = shards
        self.partitionings = partitionings
        self.compiled = compiled
        self.config = config or (compiled.spec.config if compiled.spec else KyrixConfig())
        # The effective cluster config may carry per-build overrides; the
        # indexer and router must read the same one.
        cluster_config = cluster_config or self.config.cluster
        if coalescing is None:
            coalescing = cluster_config.coalescing
        cache_entries = (
            cluster_config.router_cache_entries if self.config.cache.enabled else 0
        )
        self.cache: LRUCache[DataResponse] = LRUCache(cache_entries)
        self.coalescer: RequestCoalescer | None = (
            RequestCoalescer() if coalescing else None
        )
        self.stats = ClusterStats()
        self._cache_lock = threading.Lock()
        # Counter updates are read-modify-write; concurrent sessions are the
        # router's normal traffic, so they must not lose increments.
        self._stats_lock = threading.Lock()

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    # -- request handling --------------------------------------------------------------

    def handle(self, request: DataRequest) -> DataResponse:
        """Answer one data request via cache, coalescing or scatter-gather."""
        with self._stats_lock:
            self.stats.requests += 1
        self._resolve_layer(request)
        key = request.cache_key()
        with self._cache_lock:
            cached = self.cache.get(key)
        if cached is not None:
            with self._stats_lock:
                self.stats.cache_hits += 1
            return DataResponse(
                request=request,
                objects=cached.objects,
                query_ms=0.0,
                from_cache=True,
                queries_issued=0,
                shard_ms=dict(cached.shard_ms),
            )

        if self.coalescer is None:
            return self._scatter_gather(request)
        response, follower = self.coalescer.coalesce(
            key, lambda: self._scatter_gather(request)
        )
        if not follower:
            return response
        with self._stats_lock:
            self.stats.coalesced_requests += 1
        return DataResponse(
            request=request,
            objects=response.objects,
            query_ms=response.query_ms,
            from_cache=False,
            queries_issued=0,
            shard_ms=dict(response.shard_ms),
            coalesced=True,
        )

    def warm(self, request: DataRequest) -> None:
        """Execute a request purely to populate the router cache (prefetch)."""
        with self._cache_lock:
            cached = self.cache.peek(request.cache_key())
        if cached is None:
            self.handle(request)

    # -- scatter-gather ----------------------------------------------------------------

    def _scatter_gather(self, request: DataRequest) -> DataResponse:
        rect = self.request_rect(request)
        partitioning = self.partitionings[request.canvas_id]
        shard_ids = partitioning.shards_for_rect(rect)
        with self._stats_lock:
            self.stats.record_scatter(shard_ids)

        merged: dict[Any, dict[str, Any]] = {}
        shard_ms: dict[str, float] = {}
        slowest_ms = 0.0
        merge_ms = 0.0
        queries = 0
        received = 0
        single_shard_objects: list[dict[str, Any]] | None = None
        for shard_id in shard_ids:
            shard = self.shards[shard_id]
            shard_response = shard.handle(request.for_shard(shard_id))
            shard_ms[f"shard{shard_id}"] = shard_response.query_ms
            slowest_ms = max(slowest_ms, shard_response.query_ms)
            queries += shard_response.queries_issued
            received += len(shard_response.objects)
            if len(shard_ids) == 1:
                # Common case (fan-out 1): no replica can appear twice, so
                # skip the dedup merge entirely.
                single_shard_objects = shard_response.objects
                break
            timer = Timer()
            timer.start()
            for obj in shard_response.objects:
                merged.setdefault(self._identity(obj), obj)
            merge_ms += timer.stop()

        objects = (
            single_shard_objects
            if single_shard_objects is not None
            else list(merged.values())
        )
        response = DataResponse(
            request=request,
            objects=objects,
            # Shards execute in parallel: the gathered query time is the
            # slowest shard (critical path) plus the merge overhead.
            query_ms=slowest_ms + merge_ms,
            from_cache=False,
            queries_issued=queries,
            shard_ms=shard_ms,
        )
        with self._stats_lock:
            self.stats.duplicates_removed += received - len(objects)
            self.stats.objects_returned += len(objects)
        with self._cache_lock:
            self.cache.put(request.cache_key(), response)
        return response

    def request_rect(self, request: DataRequest) -> Rect:
        """The canvas rectangle a request covers (scatter footprint)."""
        canvas_plan = self.compiled.canvas_plan(request.canvas_id)
        if request.granularity == "tile":
            if request.tile_id is None or not request.tile_size:
                raise FetchError("tile requests need tile_id and tile_size")
            scheme = TileScheme(
                canvas_plan.width, canvas_plan.height, request.tile_size
            )
            return scheme.tile_rect(request.tile_id)
        if request.granularity == "box":
            if None in (request.xmin, request.ymin, request.xmax, request.ymax):
                raise FetchError("box requests need xmin/ymin/xmax/ymax")
            return Rect(request.xmin, request.ymin, request.xmax, request.ymax)
        raise FetchError(f"unknown granularity {request.granularity!r}")

    @staticmethod
    def _identity(obj: dict[str, Any]) -> Any:
        """Dedup key for a gathered object: ``tuple_id`` when present."""
        tuple_id = obj.get("tuple_id")
        if tuple_id is not None:
            return tuple_id
        return tuple(
            (name, tuple(value) if isinstance(value, list) else value)
            for name, value in sorted(obj.items())
        )

    # -- metadata for the frontend -----------------------------------------------------

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        """Canvas summary plus the shard regions serving it."""
        info = self.shards[0].backend.canvas_info(canvas_id)
        info["shards"] = self.partitionings[canvas_id].describe()["regions"]
        return info

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        """Average objects per canvas pixel² for one layer.

        Summed over shards, so boundary replicas are counted once per shard
        that stores them — a slight overestimate on heavily straddled data.
        """
        return sum(
            shard.backend.layer_density(canvas_id, layer_index)
            for shard in self.shards
        )

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the shared router cache."""
        return self.cache.stats.snapshot()

    def describe(self) -> dict[str, Any]:
        """Cluster topology: shard row counts and per-canvas regions."""
        return {
            "shard_count": self.shard_count,
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "rows_by_table": dict(shard.rows_by_table),
                }
                for shard in self.shards
            ],
            "partitionings": {
                canvas_id: partitioning.describe()
                for canvas_id, partitioning in self.partitionings.items()
            },
        }

    # -- helpers -----------------------------------------------------------------------

    def _resolve_layer(self, request: DataRequest) -> None:
        self.compiled.require_layer_plan(request.canvas_id, request.layer_index)
