"""Sharded precompute: route placement rows to per-shard backends.

The :class:`ShardedIndexer` takes a *source* backend whose placement tables
have already been precomputed by :class:`repro.server.indexer.Indexer`,
partitions each canvas with the configured strategy, and materialises one
embedded :class:`~repro.storage.database.Database` (plus a
:class:`~repro.server.backend.KyrixBackend`) per shard.  Each shard receives
exactly the rows whose bbox intersects its region — an object straddling a
shard boundary is stored in *every* shard it overlaps, so any shard whose
region intersects a query rectangle can answer for it; the router
deduplicates at gather time.  Indexes (B-tree on ``tuple_id``, R-tree on
``bbox``, and the tuple–tile mapping tables of the first database design)
are rebuilt per shard over the shard's own rows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..compiler.plan import CompiledApplication
from ..config import ClusterConfig, KyrixConfig
from ..errors import KyrixError
from ..server.backend import KyrixBackend
from ..storage.database import Database
from ..storage.rtree import Rect
from ..storage.statistics import SpatialDistribution, sample_spatial_distribution
from .partitioner import Partitioning, make_partitioner

if TYPE_CHECKING:
    from ..serving.base import DataService


@dataclass
class ShardHandle:
    """One shard of the cluster: its database, backend and serving stack.

    ``service`` is the shard's composed :class:`~repro.serving.base.DataService`
    (assembled by :func:`repro.cluster.builder.build_cluster`): a
    :class:`~repro.serving.middleware.SerializedService` guarding the
    embedded engine, optionally behind a wire-level
    :class:`~repro.serving.transport.TransportService`.  When no service has
    been attached (hand-built shards), calls fall back to locking the
    backend directly.

    With ``worker_mode="processes"`` the embedded database only exists to
    seed the worker's :class:`~repro.serving.worker.ShardSpec` dump; once
    the workers are up the parent calls :meth:`detach_database` so it does
    not hold every shard's rows a second time for the cluster's whole
    serving lifetime (``rows_by_table`` keeps the counts).
    """

    shard_id: int
    database: Database | None
    backend: KyrixBackend | None
    #: Rows loaded into this shard, per table (includes boundary replicas).
    rows_by_table: dict[str, int] = field(default_factory=dict)
    #: Serialises queries against this shard's embedded engine so concurrent
    #: sessions can share the cluster (the stand-in for one worker process).
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: The shard's serving stack (set by the cluster builder).
    service: "DataService | None" = None

    @property
    def total_rows(self) -> int:
        return sum(self.rows_by_table.values())

    def detach_database(self) -> None:
        """Drop the parent-side database/backend (the rows live elsewhere).

        Only valid once a ``service`` is attached that does not need the
        embedded engine (a worker-process stub): the fallback call paths
        below would have nothing to serve from.
        """
        if self.service is None:
            raise KyrixError(
                f"shard {self.shard_id} has no serving stack; detaching its "
                "database would leave it unable to answer"
            )
        if self.backend is not None:
            self.backend.close()
        self.backend = None
        self.database = None

    def _require_backend(self) -> KyrixBackend:
        if self.backend is None:
            raise KyrixError(
                f"shard {self.shard_id} was detached from its embedded "
                "database (process-worker topology); serve through its "
                "service instead"
            )
        return self.backend

    def handle(self, request):
        if self.service is not None:
            return self.service.handle(request)
        with self.lock:
            return self._require_backend().handle(request)

    def canvas_info(self, canvas_id: str):
        if self.service is not None:
            return self.service.canvas_info(canvas_id)
        with self.lock:
            return self._require_backend().canvas_info(canvas_id)

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        if self.service is not None:
            return self.service.layer_density(canvas_id, layer_index)
        with self.lock:
            return self._require_backend().layer_density(canvas_id, layer_index)

    def close(self) -> None:
        if self.service is not None:
            self.service.close()
        elif self.backend is not None:
            self.backend.close()


class ShardedIndexer:
    """Builds the per-shard databases and backends from a source backend."""

    def __init__(
        self,
        source_database: Database,
        compiled: CompiledApplication,
        config: KyrixConfig | None = None,
        *,
        cluster_config: ClusterConfig | None = None,
    ) -> None:
        self.source_database = source_database
        self.compiled = compiled
        self.config = config or (compiled.spec.config if compiled.spec else KyrixConfig())
        self.cluster_config = cluster_config or self.config.cluster
        self.cluster_config.validate()

    # -- partitioning -----------------------------------------------------------------

    def partition_canvases(self) -> dict[str, Partitioning]:
        """Partition every canvas with the configured strategy."""
        partitioner = make_partitioner(
            self.cluster_config.strategy, self.cluster_config.shard_count
        )
        partitionings: dict[str, Partitioning] = {}
        for canvas_id, canvas_plan in self.compiled.canvases.items():
            distribution = None
            if self.cluster_config.strategy == "kd":
                distribution = self._canvas_distribution(canvas_id)
            partitionings[canvas_id] = partitioner.partition(
                canvas_id, canvas_plan.width, canvas_plan.height, distribution
            )
        return partitionings

    def _canvas_distribution(self, canvas_id: str) -> SpatialDistribution:
        """Sampled bbox-centre distribution over a canvas's dynamic layers."""
        distribution = SpatialDistribution()
        for layer_plan in self.compiled.canvas_plan(canvas_id).dynamic_layers():
            table_name = layer_plan.placement_table or layer_plan.source_table
            if table_name is None or not self.source_database.has_table(table_name):
                continue
            table = self.source_database.table(table_name)
            if not table.schema.has_column("bbox"):
                continue
            distribution.extend(
                sample_spatial_distribution(
                    table.scan_rows(),
                    table.schema.column_index("bbox"),
                    sample_limit=self.cluster_config.kd_sample_limit,
                    row_count_hint=table.row_count,
                )
            )
        return distribution

    # -- shard building ---------------------------------------------------------------

    def build_shards(
        self,
        partitionings: dict[str, Partitioning] | None = None,
        *,
        tile_sizes: tuple[int, ...] = (),
    ) -> tuple[list[ShardHandle], dict[str, Partitioning]]:
        """Materialise every shard database/backend.

        Returns the shard handles and the partitionings they were built
        from.  ``tile_sizes`` pre-builds the tuple–tile mapping tables per
        shard (the mapping design otherwise builds them lazily on the first
        tile request, polluting measured latencies).
        """
        partitionings = partitionings or self.partition_canvases()
        shard_count = self.cluster_config.shard_count
        databases = [Database(self.config.storage) for _ in range(shard_count)]

        # A table may feed layers on several canvases; route each of its rows
        # through every referencing canvas's partitioning.
        table_partitionings: dict[str, list[Partitioning]] = {}
        for layer_plan in self.compiled.all_layer_plans():
            if layer_plan.static:
                continue
            table_name = layer_plan.placement_table or layer_plan.source_table
            if table_name is None:
                raise KyrixError(
                    f"layer {layer_plan.layer_name!r} has no queryable table; "
                    "run the source backend's precompute() before sharding"
                )
            referencing = table_partitionings.setdefault(table_name, [])
            partitioning = partitionings[layer_plan.canvas_id]
            if partitioning not in referencing:
                referencing.append(partitioning)

        rows_by_table: list[dict[str, int]] = [dict() for _ in range(shard_count)]
        for table_name, referencing in table_partitionings.items():
            per_shard = self._route_table(table_name, referencing, shard_count)
            source = self.source_database.table(table_name)
            for shard_id, rows in enumerate(per_shard):
                shard_table = databases[shard_id].create_table(
                    table_name, source.schema
                )
                shard_table.bulk_load(rows)
                for info in source.indexes.values():
                    shard_table.create_index(
                        info.name, info.column, info.kind, unique=info.unique
                    )
                rows_by_table[shard_id][table_name] = len(rows)

        shards: list[ShardHandle] = []
        for shard_id in range(shard_count):
            backend = KyrixBackend(databases[shard_id], self.compiled, self.config)
            shards.append(
                ShardHandle(
                    shard_id=shard_id,
                    database=databases[shard_id],
                    backend=backend,
                    rows_by_table=rows_by_table[shard_id],
                )
            )

        for tile_size in tile_sizes:
            for shard in shards:
                shard.backend.ensure_mapping_tables(tile_size)
        return shards, partitionings

    def _route_table(
        self,
        table_name: str,
        referencing: list[Partitioning],
        shard_count: int,
    ) -> list[list[tuple]]:
        """Split one source table into per-shard row lists by bbox overlap."""
        source = self.source_database.table(table_name)
        per_shard: list[list[tuple]] = [[] for _ in range(shard_count)]
        if not source.schema.has_column("bbox"):
            # No spatial column to route by: replicate everywhere (correct,
            # just not partitioned — e.g. pure lookup side tables).
            for row in source.scan_rows():
                for rows in per_shard:
                    rows.append(row)
            return per_shard
        bbox_position = source.schema.column_index("bbox")
        for row in source.scan_rows():
            bbox = row[bbox_position]
            if bbox is None:
                continue
            rect = Rect.from_tuple(bbox)
            targets: set[int] = set()
            for partitioning in referencing:
                targets.update(partitioning.shards_for_rect(rect))
            for shard_id in targets:
                per_shard[shard_id].append(row)
        return per_shard
