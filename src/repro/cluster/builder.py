"""One-call assembly of a sharded serving cluster from a single backend."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from ..config import ClusterConfig, KyrixConfig
from ..net.columnar import codec_preference
from ..server.backend import KyrixBackend
from ..telemetry import configure as configure_telemetry
from ..serving.base import DataService
from ..serving.middleware import CachingService, SerializedService
from ..serving.replica import ReplicaService
from ..serving.transport import RemoteBackendStub, TransportService
from ..serving.worker import (
    ShardSpec,
    WorkerPool,
    build_shard_spec,
    database_checksum,
)
from .partitioner import Partitioning
from .router import ClusterRouter, replica_key
from .sharded import ShardedIndexer, ShardHandle

if TYPE_CHECKING:
    from .autopilot import ClusterAutopilot
    from .rebalancer import LoadRebalancer


@dataclass
class ShardedCluster:
    """A built cluster: the router plus everything behind it."""

    router: ClusterRouter
    shards: list[ShardHandle]
    partitionings: dict[str, Partitioning]
    #: The worker-process pool serving the shards, when the cluster was
    #: built with ``worker_mode="processes"``; ``None`` for in-process
    #: (thread) topologies.
    worker_pool: WorkerPool | None = None
    #: The source backend the shards were split from.  An online rebalance
    #: re-shards it under a new partitioning, so the cluster keeps the
    #: reference for its whole lifetime (the caller owns the backend; this
    #: is not an extra copy of the data).
    source: KyrixBackend | None = None
    #: Tile sizes whose tuple–tile mapping tables were prebuilt per shard
    #: (a rebalance prebuilds the same ones on the new shard set).
    tile_sizes: tuple[int, ...] = ()
    #: The attached load rebalancer, when ``cluster.rebalance_enabled``
    #: (or the ``rebalance=`` build override) asked for one.
    rebalancer: "LoadRebalancer | None" = field(default=None, repr=False)
    #: The running control loop, when ``cluster.autopilot.enabled`` (or
    #: the ``autopilot=`` build override) asked for one.
    autopilot: "ClusterAutopilot | None" = field(default=None, repr=False)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def describe(self) -> dict[str, Any]:
        description = self.router.describe()
        if self.worker_pool is not None:
            description["workers"] = self.worker_pool.describe()
        return description

    def close(self) -> None:
        # router.close() parks the autopilot before tearing anything down
        # (so a mid-flight control pass cannot race the teardown) and then
        # drains the worker pool; the explicit calls here keep close()
        # correct for callers holding a cluster whose router was already
        # closed independently.
        self.router.close()
        if self.autopilot is not None:
            self.autopilot.close()
        if self.worker_pool is not None:
            self.worker_pool.close()


def shard_service(
    shard: ShardHandle, *, wire: bool, codecs: tuple[str, ...] | None = None
) -> DataService:
    """The single-copy serving stack of one shard.

    Always a :class:`~repro.serving.middleware.SerializedService` guarding
    the shard's embedded engine (the stand-in for one single-threaded worker
    process).  With ``wire=True`` a
    :class:`~repro.serving.transport.TransportService` sits on top, so every
    call the router makes crosses the :mod:`repro.net` encoding both ways —
    exactly the bytes a multi-node deployment would exchange.  ``codecs``
    is the transport seam's wire-codec preference (from
    ``cluster.wire_codec``, which lives on the *effective* cluster config,
    not necessarily the backend's own).
    """
    stack: DataService = SerializedService(shard.backend, lock=shard.lock)
    if wire:
        stack = TransportService(stack, codecs=codecs)
    return stack


def replica_stack(
    shard: ShardHandle,
    config: "KyrixConfig",
    *,
    wire: bool,
    codecs: tuple[str, ...] | None = None,
) -> DataService:
    """One in-process replica's serving stack over a shard's shared index.

    The unit :func:`replica_service` composes N of — and the rebuild seam
    the autopilot's read-repair uses to replace a single diverged replica
    without touching its siblings.
    """
    cache_entries = config.cache.backend_entries if config.cache.enabled else 0
    stack: DataService = SerializedService(
        shard.backend.query_service(), lock=shard.lock
    )
    stack = CachingService(stack, entries=cache_entries)
    if wire:
        stack = TransportService(stack, codecs=codecs)
    return stack


def replica_service(
    shard: ShardHandle,
    cluster_config: "ClusterConfig",
    config: "KyrixConfig",
    *,
    wire: bool,
    codecs: tuple[str, ...] | None = None,
) -> ReplicaService:
    """A replica set fronting one shard's immutable index.

    Every replica shares the shard's precomputed database/backend — the
    index is immutable after sharding, so replicas are interchangeable by
    construction — but composes its *own* serving stack on top: an
    independent :class:`~repro.serving.middleware.CachingService` (so
    ``per_key_affinity`` has per-replica caches to aim at), an independent
    :class:`~repro.serving.transport.TransportService`, and its own breaker
    and traffic counters in the :class:`~repro.serving.replica.ReplicaService`.
    Engine access stays serialised through the shard's single lock (the
    embedded storage engine is not thread-safe; one lock per shard is the
    in-process stand-in for each replica process owning a copy of the
    index).
    """
    replicas: list[DataService] = [
        replica_stack(shard, config, wire=wire, codecs=codecs)
        for _ in range(cluster_config.replicas)
    ]
    return ReplicaService(
        replicas,
        policy=cluster_config.replica_policy,
        retry_limit=cluster_config.replica_retry_limit,
        breaker_threshold=cluster_config.breaker_threshold,
        breaker_reset_s=cluster_config.breaker_reset_s,
    )


def spawn_worker_topology(
    shards: list[ShardHandle],
    cluster_config: ClusterConfig,
    config: KyrixConfig,
    compiled: Any,
    *,
    generation: int = 0,
) -> WorkerPool:
    """Fork one worker process per shard replica and attach their stacks.

    Unlike the thread topology, every replica rebuilds its **own copy** of
    the shard index inside its process (nothing is shared), which is what
    makes the per-replica divergence checksums in
    :class:`~repro.cluster.router.ClusterStats` meaningful.  Each shard's
    serving stack becomes a :class:`~repro.serving.transport.RemoteBackendStub`
    over a :class:`~repro.net.socket_transport.SocketTransport` per replica
    — fronted by a :class:`~repro.serving.replica.ReplicaService` when the
    configuration asks for more than one replica.

    Once the workers are up, the parent-side shard databases are
    **detached** (:meth:`~repro.cluster.sharded.ShardHandle.detach_database`):
    they only existed to seed the :class:`ShardSpec` dumps, and keeping
    them would hold every shard's rows in the parent a second time for the
    cluster's whole serving lifetime.

    ``generation`` names the rebalance epoch the pool serves (0 for the
    initial build); during an online rebalance the new generation spawns
    while the old one still serves, and the generation keeps their process
    names and fixed-port ranges apart.
    """
    codecs = codec_preference(cluster_config.wire_codec)
    specs: list[ShardSpec] = []
    for shard in shards:
        # One dump (and one pickled payload) per shard: the pool runs the
        # same spec object once per replica, so N replicas do not mean N
        # copies of the rows in the parent.
        shard_spec = build_shard_spec(
            shard.database, compiled, config, shard_id=shard.shard_id, codecs=codecs
        )
        specs.extend([shard_spec] * cluster_config.replicas)
    pool = WorkerPool(
        specs,
        port_base=cluster_config.worker_port_base,
        spawn_timeout_s=cluster_config.worker_spawn_timeout_s,
        generation=generation,
    )
    pool.start()
    for shard in shards:
        stubs: list[DataService] = [
            RemoteBackendStub(
                pool.handle_for(shard.shard_id, replica_index).transport(),
                compiled,
                config,
                codecs=codecs,
            )
            for replica_index in range(cluster_config.replicas)
        ]
        if cluster_config.replicas > 1:
            shard.service = ReplicaService(
                stubs,
                policy=cluster_config.replica_policy,
                retry_limit=cluster_config.replica_retry_limit,
                breaker_threshold=cluster_config.breaker_threshold,
                breaker_reset_s=cluster_config.breaker_reset_s,
            )
        else:
            shard.service = stubs[0]
        # Slim parent: the workers own the only live copies of the rows
        # now; the parent keeps counts (rows_by_table), not databases.
        shard.detach_database()
    return pool


def attach_shard_services(
    shards: list[ShardHandle],
    cluster_config: ClusterConfig,
    config: KyrixConfig,
    compiled: Any,
    *,
    generation: int = 0,
) -> WorkerPool | None:
    """Attach the configured serving stack to every shard handle.

    The one topology dispatch both :func:`build_cluster` and
    :class:`~repro.cluster.rebalancer.LoadRebalancer` go through: process
    mode forks a worker pool (returned), thread mode composes in-process
    stacks (returns ``None``).
    """
    if cluster_config.worker_mode == "processes":
        return spawn_worker_topology(
            shards, cluster_config, config, compiled, generation=generation
        )
    codecs = codec_preference(cluster_config.wire_codec)
    for shard in shards:
        if cluster_config.replicas > 1:
            shard.service = replica_service(
                shard,
                cluster_config,
                config,
                wire=cluster_config.wire_shards,
                codecs=codecs,
            )
        else:
            shard.service = shard_service(
                shard, wire=cluster_config.wire_shards, codecs=codecs
            )
    return None


def collect_replica_checksums(
    shards: list[ShardHandle],
    cluster_config: ClusterConfig,
    pool: WorkerPool | None,
) -> dict[str, str]:
    """Per-replica index checksums of a freshly assembled shard set.

    Workers report the hash of their own rebuilt copy; in-process *replica
    sets* share the shard's index, so its hash is recorded once per
    replica.  Either way the same content hashes to the same value, so
    divergence detection is topology-blind.  Single-replica thread
    clusters (the common fast path) skip the hash entirely — with one
    in-process copy per shard there is nothing to diverge from, and
    hashing every row would tax every build.
    """
    checksums: dict[str, str] = {}
    if pool is not None:
        for handle in pool.handles:
            checksums[replica_key(handle.shard_id, handle.replica_index)] = (
                handle.checksum
            )
    elif cluster_config.replicas > 1:
        for shard in shards:
            checksum = database_checksum(shard.database)
            for replica_index in range(cluster_config.replicas):
                checksums[replica_key(shard.shard_id, replica_index)] = checksum
    return checksums


def build_cluster(
    source_backend: KyrixBackend,
    *,
    shard_count: int | None = None,
    strategy: str | None = None,
    coalescing: bool | None = None,
    parallel: bool | None = None,
    wire_shards: bool | None = None,
    replicas: int | None = None,
    replica_policy: str | None = None,
    worker_mode: str | None = None,
    wire_codec: str | None = None,
    rebalance: bool | None = None,
    autopilot: bool | None = None,
    telemetry: bool | None = None,
    tile_sizes: tuple[int, ...] = (),
) -> ShardedCluster:
    """Shard a precomputed backend into a scatter-gather serving cluster.

    ``source_backend`` must have run ``precompute()`` already: its placement
    (or separable source) tables are what gets split across shards.  The
    keyword arguments override the corresponding ``config.cluster`` fields
    for this build only; ``tile_sizes`` pre-builds per-shard tuple–tile
    mapping tables so the mapping design serves its first tile request
    without a lazy build.  With ``worker_mode="processes"`` every shard
    replica runs in its own forked worker process behind a socket transport
    (see :mod:`repro.serving.worker`).  With ``rebalance=True`` (or
    ``cluster.rebalance_enabled``) the cluster carries a ready-to-use
    :class:`~repro.cluster.rebalancer.LoadRebalancer` as
    ``cluster.rebalancer``.  With ``autopilot=True`` (or
    ``cluster.autopilot.enabled``) a
    :class:`~repro.cluster.autopilot.ClusterAutopilot` background control
    loop is attached *and started*: it snapshots load, rebalances,
    autoscales shard/replica counts and read-repairs diverged replicas on
    its own, and stops automatically when the cluster (or the router, via
    ``build_service`` stacks) closes.

    ``telemetry`` overrides ``config.telemetry.enabled`` for this build:
    the effective configuration (with the flag folded in) is what the
    :class:`~repro.serving.worker.ShardSpec` dumps carry, so worker
    processes stand up the same tracing plane as the router side.
    """
    config = source_backend.config
    if telemetry is not None and telemetry != config.telemetry.enabled:
        config = replace(
            config, telemetry=replace(config.telemetry, enabled=telemetry)
        )
    if telemetry is not None or config.telemetry.enabled:
        configure_telemetry(config.telemetry)
    cluster_config = config.cluster
    overrides = {
        name: value
        for name, value in (
            ("shard_count", shard_count),
            ("strategy", strategy),
            ("parallel_shards", parallel),
            ("wire_shards", wire_shards),
            ("replicas", replicas),
            ("replica_policy", replica_policy),
            ("worker_mode", worker_mode),
            ("wire_codec", wire_codec),
            ("rebalance_enabled", rebalance),
        )
        if value is not None
    }
    if autopilot is not None and autopilot != cluster_config.autopilot.enabled:
        overrides["autopilot"] = replace(
            cluster_config.autopilot, enabled=autopilot
        )
    if overrides:
        cluster_config = replace(cluster_config, **overrides)
        cluster_config.validate()
    indexer = ShardedIndexer(
        source_backend.database,
        source_backend.compiled,
        config,
        cluster_config=cluster_config,
    )
    shards, partitionings = indexer.build_shards(tile_sizes=tile_sizes)
    pool = attach_shard_services(
        shards, cluster_config, config, source_backend.compiled
    )
    router = ClusterRouter(
        shards,
        partitionings,
        source_backend.compiled,
        config,
        cluster_config=cluster_config,
        coalescing=coalescing,
    )
    router.stats.replica_checksums.update(
        collect_replica_checksums(shards, cluster_config, pool)
    )
    # The generation-0 table owns the pool it serves from, so retiring it
    # after a rebalance closes these workers (not the new generation's).
    router._table.worker_pool = pool
    cluster = ShardedCluster(
        router=router,
        shards=shards,
        partitionings=partitionings,
        worker_pool=pool,
        source=source_backend,
        tile_sizes=tuple(tile_sizes),
    )
    # The router carries its cluster handle so callers that only hold the
    # service stack (e.g. `serving.build_service` output) can reach shard
    # bookkeeping without rebuilding a second ShardedCluster.
    router.cluster = cluster
    # A router assembled here is a sanctioned endpoint, whether reached
    # through build_service or through build_cluster directly.
    from ..serving.factory import mark_factory_built

    mark_factory_built(router)
    if cluster_config.rebalance_enabled or cluster_config.autopilot.enabled:
        # Local import: the rebalancer composes builder pieces, so a
        # top-level import would be circular.  The autopilot steers the
        # cluster *through* the rebalancer, so enabling it implies one.
        from .rebalancer import LoadRebalancer

        cluster.rebalancer = LoadRebalancer(cluster)
    if cluster_config.autopilot.enabled:
        from .autopilot import ClusterAutopilot

        cluster.autopilot = ClusterAutopilot(cluster).start()
    return cluster
