"""One-call assembly of a sharded serving cluster from a single backend."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..server.backend import KyrixBackend
from .partitioner import Partitioning
from .router import ClusterRouter
from .sharded import ShardedIndexer, ShardHandle


@dataclass
class ShardedCluster:
    """A built cluster: the router plus everything behind it."""

    router: ClusterRouter
    shards: list[ShardHandle]
    partitionings: dict[str, Partitioning]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def describe(self) -> dict[str, Any]:
        return self.router.describe()


def build_cluster(
    source_backend: KyrixBackend,
    *,
    shard_count: int | None = None,
    strategy: str | None = None,
    coalescing: bool | None = None,
    tile_sizes: tuple[int, ...] = (),
) -> ShardedCluster:
    """Shard a precomputed backend into a scatter-gather serving cluster.

    ``source_backend`` must have run ``precompute()`` already: its placement
    (or separable source) tables are what gets split across shards.  The
    keyword arguments override the corresponding ``config.cluster`` fields
    for this build only; ``tile_sizes`` pre-builds per-shard tuple–tile
    mapping tables so the mapping design serves its first tile request
    without a lazy build.
    """
    config = source_backend.config
    cluster_config = config.cluster
    if shard_count is not None or strategy is not None:
        cluster_config = replace(
            cluster_config,
            shard_count=shard_count if shard_count is not None else cluster_config.shard_count,
            strategy=strategy if strategy is not None else cluster_config.strategy,
        )
    indexer = ShardedIndexer(
        source_backend.database,
        source_backend.compiled,
        config,
        cluster_config=cluster_config,
    )
    shards, partitionings = indexer.build_shards(tile_sizes=tile_sizes)
    router = ClusterRouter(
        shards,
        partitionings,
        source_backend.compiled,
        config,
        cluster_config=cluster_config,
        coalescing=coalescing,
    )
    return ShardedCluster(router=router, shards=shards, partitionings=partitionings)
