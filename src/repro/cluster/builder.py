"""One-call assembly of a sharded serving cluster from a single backend."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..config import ClusterConfig, KyrixConfig
from ..server.backend import KyrixBackend
from ..serving.base import DataService
from ..serving.middleware import CachingService, SerializedService
from ..serving.replica import ReplicaService
from ..serving.transport import TransportService
from .partitioner import Partitioning
from .router import ClusterRouter
from .sharded import ShardedIndexer, ShardHandle


@dataclass
class ShardedCluster:
    """A built cluster: the router plus everything behind it."""

    router: ClusterRouter
    shards: list[ShardHandle]
    partitionings: dict[str, Partitioning]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def describe(self) -> dict[str, Any]:
        return self.router.describe()

    def close(self) -> None:
        self.router.close()


def shard_service(shard: ShardHandle, *, wire: bool) -> DataService:
    """The single-copy serving stack of one shard.

    Always a :class:`~repro.serving.middleware.SerializedService` guarding
    the shard's embedded engine (the stand-in for one single-threaded worker
    process).  With ``wire=True`` a
    :class:`~repro.serving.transport.TransportService` sits on top, so every
    call the router makes crosses the :mod:`repro.net.protocol` JSON
    encoding both ways — exactly the bytes a multi-node deployment would
    exchange.
    """
    stack: DataService = SerializedService(shard.backend, lock=shard.lock)
    if wire:
        stack = TransportService(stack)
    return stack


def replica_service(
    shard: ShardHandle,
    cluster_config: "ClusterConfig",
    config: "KyrixConfig",
    *,
    wire: bool,
) -> ReplicaService:
    """A replica set fronting one shard's immutable index.

    Every replica shares the shard's precomputed database/backend — the
    index is immutable after sharding, so replicas are interchangeable by
    construction — but composes its *own* serving stack on top: an
    independent :class:`~repro.serving.middleware.CachingService` (so
    ``per_key_affinity`` has per-replica caches to aim at), an independent
    :class:`~repro.serving.transport.TransportService`, and its own breaker
    and traffic counters in the :class:`~repro.serving.replica.ReplicaService`.
    Engine access stays serialised through the shard's single lock (the
    embedded storage engine is not thread-safe; one lock per shard is the
    in-process stand-in for each replica process owning a copy of the
    index).
    """
    cache_entries = config.cache.backend_entries if config.cache.enabled else 0
    replicas: list[DataService] = []
    for _ in range(cluster_config.replicas):
        stack: DataService = SerializedService(
            shard.backend.query_service(), lock=shard.lock
        )
        stack = CachingService(stack, entries=cache_entries)
        if wire:
            stack = TransportService(stack)
        replicas.append(stack)
    return ReplicaService(
        replicas,
        policy=cluster_config.replica_policy,
        retry_limit=cluster_config.replica_retry_limit,
        breaker_threshold=cluster_config.breaker_threshold,
        breaker_reset_s=cluster_config.breaker_reset_s,
    )


def build_cluster(
    source_backend: KyrixBackend,
    *,
    shard_count: int | None = None,
    strategy: str | None = None,
    coalescing: bool | None = None,
    parallel: bool | None = None,
    wire_shards: bool | None = None,
    replicas: int | None = None,
    replica_policy: str | None = None,
    tile_sizes: tuple[int, ...] = (),
) -> ShardedCluster:
    """Shard a precomputed backend into a scatter-gather serving cluster.

    ``source_backend`` must have run ``precompute()`` already: its placement
    (or separable source) tables are what gets split across shards.  The
    keyword arguments override the corresponding ``config.cluster`` fields
    for this build only; ``tile_sizes`` pre-builds per-shard tuple–tile
    mapping tables so the mapping design serves its first tile request
    without a lazy build.
    """
    config = source_backend.config
    cluster_config = config.cluster
    overrides = {
        name: value
        for name, value in (
            ("shard_count", shard_count),
            ("strategy", strategy),
            ("parallel_shards", parallel),
            ("wire_shards", wire_shards),
            ("replicas", replicas),
            ("replica_policy", replica_policy),
        )
        if value is not None
    }
    if overrides:
        cluster_config = replace(cluster_config, **overrides)
        cluster_config.validate()
    indexer = ShardedIndexer(
        source_backend.database,
        source_backend.compiled,
        config,
        cluster_config=cluster_config,
    )
    shards, partitionings = indexer.build_shards(tile_sizes=tile_sizes)
    for shard in shards:
        if cluster_config.replicas > 1:
            shard.service = replica_service(
                shard, cluster_config, config, wire=cluster_config.wire_shards
            )
        else:
            shard.service = shard_service(shard, wire=cluster_config.wire_shards)
    router = ClusterRouter(
        shards,
        partitionings,
        source_backend.compiled,
        config,
        cluster_config=cluster_config,
        coalescing=coalescing,
    )
    cluster = ShardedCluster(router=router, shards=shards, partitionings=partitionings)
    # The router carries its cluster handle so callers that only hold the
    # service stack (e.g. `serving.build_service` output) can reach shard
    # bookkeeping without rebuilding a second ShardedCluster.
    router.cluster = cluster
    return cluster
