"""The self-driving control loop: observe, decide, act — continuously.

Everything the cluster can already do on demand — online rebalancing
(:mod:`repro.cluster.rebalancer`), shard-count changes, replica-count
changes, replica swaps (:meth:`~repro.serving.replica.ReplicaService.swap_replica`)
— this module does *unattended*.  A :class:`ClusterAutopilot` runs one
control pass (:meth:`~ClusterAutopilot.tick`) on a fixed interval from a
background daemon thread and steers the cluster through four policies:

1. **Skew rebalancing** — when per-shard traffic skew crosses the
   rebalancer's threshold, trigger a load-weighted re-split.  Guarded by
   a *cooldown* (at most one migration per window) and *hysteresis* (a
   migration disarms the trigger; it re-arms once skew falls below
   ``threshold - hysteresis``, or — the persistent-skew escape hatch —
   after ``rearm_windows`` full cooldown windows if skew never left the
   band, so one bad split cannot disarm the loop forever), so an
   oscillating hotspot cannot thrash the cluster with back-to-back
   migrations.
2. **Shard autoscaling** — sustained volume doubles the shard count
   (2→4→8, clamped to ``[min_shards, max_shards]``); a configurable run
   of idle ticks halves it.  Decisions delegate to
   :meth:`~repro.cluster.rebalancer.LoadRebalancer.propose_shard_count`.
3. **Replica autoscaling** — per-replica attempt pressure above
   ``replica_pressure`` adds a replica per shard (up to ``max_replicas``);
   the idle path drops back to one.
4. **Read-repair** — when per-replica index checksums disagree
   (:meth:`~repro.cluster.router.ClusterStats.divergent_replicas`), the
   diverged replica is rebuilt from the cluster's source backend and
   swapped in behind a fresh circuit breaker while its siblings keep
   serving; in-flight requests drain on the old replica before it closes.
   Repair is *not* cooldown-gated — divergence is a correctness problem,
   not a load problem.

The clock is pluggable (anything with ``now_ms``), so tests drive
cooldown windows deterministically with
:class:`~repro.metrics.timer.VirtualClock` and call :meth:`tick` directly
instead of sleeping against the real thread.  Every pass runs under an
``autopilot_tick`` span and every action bumps the ``autopilot_actions``
telemetry counter (plus a per-kind counter), so ``/metrics`` shows what
the loop has been deciding.
"""

from __future__ import annotations

import threading
from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..config import AutopilotConfig
from ..errors import KyrixError
from ..net.columnar import codec_preference
from ..serving.replica import MonotonicClock, ReplicaService
from ..serving.transport import RemoteBackendStub
from ..serving.worker import build_shard_spec, database_checksum
from ..telemetry import get_registry, get_tracer
from .rebalancer import LoadRebalancer, RebalanceReport
from .sharded import ShardedIndexer

if TYPE_CHECKING:
    from .builder import ShardedCluster


def _replica_index(key: str) -> int:
    """The replica index back out of a ``"shard{S}/replica{R}"`` key."""
    return int(key.rsplit("replica", 1)[1])


def _window_skew(window: dict[int, int]) -> float:
    """``max / mean`` over one pass's per-shard request counts."""
    total = sum(window.values())
    if not window or total <= 0:
        return 1.0
    return max(window.values()) / (total / len(window))


@dataclass
class AutopilotAction:
    """One decision the control loop acted on (or explicitly skipped)."""

    #: ``"rebalance"`` / ``"grow"`` / ``"shrink"`` / ``"replica_scale"`` /
    #: ``"read_repair"`` / ``"repair_skipped"`` / ``"error"``.
    kind: str
    #: The control pass that produced it (1-based).
    tick: int
    #: Autopilot-clock timestamp of the decision.
    at_ms: float
    detail: dict[str, Any] = field(default_factory=dict)
    #: The migration report, for actions that swapped the shard table.
    report: RebalanceReport | None = field(default=None, repr=False)

    def describe(self) -> dict[str, Any]:
        described: dict[str, Any] = {"kind": self.kind, "tick": self.tick}
        described.update(self.detail)
        if self.report is not None:
            described["report"] = self.report.describe()
        return described


class ClusterAutopilot:
    """Background controller that keeps one cluster balanced and healthy.

    Construct over a built :class:`~repro.cluster.builder.ShardedCluster`
    (``build_cluster(..., autopilot=True)`` does this and calls
    :meth:`start`).  The loop itself is just :meth:`tick` on a timer:
    tests call :meth:`tick` directly — with a
    :class:`~repro.metrics.timer.VirtualClock` — and never need the
    thread.  All decision state lives behind one lock, so a manual tick
    and the background thread never interleave mid-pass.
    """

    def __init__(
        self,
        cluster: "ShardedCluster",
        *,
        config: AutopilotConfig | None = None,
        clock: Any = None,
        rebalancer: LoadRebalancer | None = None,
    ) -> None:
        self.cluster = cluster
        self.router = cluster.router
        self.config = config or self.router.cluster_config.autopilot
        self.config.validate()
        self.rebalancer = rebalancer or cluster.rebalancer or LoadRebalancer(cluster)
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._tick_count = 0
        self._armed = True
        self._idle_ticks = 0
        self._last_migration_ms: float | None = None
        self._last_loads: dict[int, int] = {}
        self._last_attempts = 0
        self._actions: deque[AutopilotAction] = deque(maxlen=256)

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> "ClusterAutopilot":
        """Start the background control thread (idempotent)."""
        with self._lock:
            if self._thread is None:
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._run, name="kyrix-autopilot", daemon=True
                )
                self._thread.start()
        return self

    def close(self) -> None:
        """Stop the control thread; a mid-flight pass finishes first."""
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=60.0)

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.tick()
            except Exception as error:  # pragma: no cover - defensive loop guard
                self._actions.append(
                    AutopilotAction(
                        kind="error",
                        tick=self._tick_count,
                        at_ms=self.clock.now_ms,
                        detail={"error": f"{type(error).__name__}: {error}"},
                    )
                )

    # -- introspection -----------------------------------------------------------------

    @property
    def actions(self) -> list[AutopilotAction]:
        """The retained action log (oldest first, bounded)."""
        with self._lock:
            return list(self._actions)

    def action_counts(self) -> dict[str, int]:
        """``{kind: count}`` over the retained action log."""
        return dict(TallyCounter(action.kind for action in self.actions))

    def describe(self) -> dict[str, Any]:
        with self._lock:
            return {
                "ticks": self._tick_count,
                "armed": self._armed,
                "idle_ticks": self._idle_ticks,
                "shard_count": self.router.shard_count,
                "replicas": self.router.cluster_config.replicas,
                "actions": dict(
                    TallyCounter(action.kind for action in self._actions)
                ),
            }

    # -- the control pass --------------------------------------------------------------

    def tick(self) -> list[AutopilotAction]:
        """Run one synchronous control pass; returns the actions it took.

        Order inside a pass: read-repair first (correctness, never
        cooldown-gated), then at most **one** migration decision —
        grow/shrink beats skew-rebalance beats replica scaling — gated by
        the cooldown window.
        """
        registry = get_registry()
        tracer = get_tracer()
        with self._lock:
            self._tick_count += 1
            tick = self._tick_count
            now = self.clock.now_ms
            actions: list[AutopilotAction] = []
            with tracer.span("autopilot_tick", tick=tick) as span:
                if self.config.read_repair:
                    actions.extend(self._read_repair_pass(tick, now))

                loads = self.rebalancer.shard_loads()
                if any(
                    loads.get(shard_id, 0) < count
                    for shard_id, count in self._last_loads.items()
                ):
                    # A swap cleared the counters since the last pass.
                    window = dict(loads)
                else:
                    window = {
                        shard_id: count - self._last_loads.get(shard_id, 0)
                        for shard_id, count in loads.items()
                    }
                delta = sum(window.values())
                attempts = self._replica_attempts()
                attempt_delta = attempts - self._last_attempts
                if attempt_delta < 0:
                    attempt_delta = attempts
                # Skew over *this pass's* traffic, not the cumulative
                # counters: a control loop must react to what the load is
                # doing now, and hysteresis must be able to re-arm once a
                # hotspot genuinely dissipates — cumulative history would
                # pin the old skew forever.
                skew = _window_skew(window)
                span.add_event(
                    "observed", skew=round(skew, 3), requests=delta, tick=tick
                )

                if self._idle_ticks_qualify(delta):
                    self._idle_ticks += 1
                else:
                    self._idle_ticks = 0
                if not self._armed and self._should_rearm(skew, now):
                    self._armed = True

                cooled = (
                    self._last_migration_ms is None
                    or now - self._last_migration_ms
                    >= self.config.cooldown_s * 1000.0
                )
                decision = self._decide(delta, attempt_delta, skew)
                if decision is not None and cooled:
                    kind, target_shards, target_replicas = decision
                    report = self.rebalancer.rebalance(
                        target_shards, replicas=target_replicas, reason=kind
                    )
                    action = AutopilotAction(
                        kind=kind,
                        tick=tick,
                        at_ms=now,
                        detail={
                            "shards": f"{report.shard_count_before}->"
                            f"{report.shard_count_after}",
                            "replicas": target_replicas,
                            "skew": round(skew, 3),
                            "swapped": report.swapped,
                        },
                        report=report,
                    )
                    actions.append(action)
                    if report.swapped:
                        self._last_migration_ms = now
                        self._armed = False
                        self._idle_ticks = 0
                        # The swap cleared the traffic counters.
                        loads = {}
                        attempts = 0

                self._last_loads = dict(loads)
                self._last_attempts = attempts
                for action in actions:
                    self._actions.append(action)
                    registry.counter("autopilot_actions").bump()
                    registry.counter(f"autopilot_{action.kind}").bump()
                    span.add_event(f"autopilot_{action.kind}", **action.detail)
            return actions

    def _idle_ticks_qualify(self, delta: int) -> bool:
        return delta <= self.config.shrink_requests

    def _should_rearm(self, skew: float, now: float) -> bool:
        """Whether the disarmed skew trigger may fire again.

        Two ways back: the hysteresis band (skew fell clearly below the
        trigger — the hotspot dissipated or the split fixed it), or the
        persistent-skew escape hatch (``rearm_windows`` full cooldown
        windows passed with skew still in the band — the previous split
        demonstrably did not fix it, and retrying with a fresher load
        histogram is convergence, not thrash).
        """
        if skew < self.rebalancer.skew_threshold - self.config.hysteresis:
            return True
        return (
            self._last_migration_ms is not None
            and now - self._last_migration_ms
            >= self.config.rearm_windows * self.config.cooldown_s * 1000.0
        )

    def _replica_attempts(self) -> int:
        """Total per-replica attempts recorded since the last swap."""
        router = self.router
        # Summing needs a consistent iteration; per-replica keys appear as
        # replicas first take traffic, so iterate under the stats lock.
        with router._stats_lock:
            return sum(router.stats.per_replica_requests.values())

    def _decide(
        self, delta: int, attempt_delta: int, skew: float
    ) -> tuple[str, int, int] | None:
        """Pick at most one migration for this pass (kind, shards, replicas)."""
        cfg = self.config
        current = self.router.shard_count
        replicas = self.router.cluster_config.replicas
        idle = self._idle_ticks >= cfg.shrink_idle_ticks
        target = self.rebalancer.propose_shard_count(
            delta,
            min_shards=cfg.min_shards,
            max_shards=cfg.max_shards,
            grow_requests=cfg.grow_requests,
            # Halving only after a sustained idle run, not one quiet tick.
            shrink_requests=cfg.shrink_requests if idle else -1,
        )
        if target > current:
            return ("grow", target, replicas)
        if target < current:
            # Shrinking shards also folds replicas back to one: an idle
            # cluster needs neither the capacity nor the redundancy cost.
            return ("shrink", target, 1 if replicas > 1 else replicas)
        if idle and replicas > 1:
            return ("replica_scale", current, replicas - 1)
        if (
            self._armed
            and current >= 2
            and skew >= self.rebalancer.skew_threshold
            and delta >= self.rebalancer.min_requests
        ):
            return ("rebalance", current, replicas)
        slots = max(1, current * replicas)
        # Process/replica topologies report per-attempt counts; plain
        # thread shards do not, so fall back to the scatter volume.
        pressure = (attempt_delta or delta) / slots
        if pressure >= cfg.replica_pressure and replicas < cfg.max_replicas:
            return ("replica_scale", current, replicas + 1)
        return None

    # -- read-repair -------------------------------------------------------------------

    def _read_repair_pass(self, tick: int, now: float) -> list[AutopilotAction]:
        """Rebuild and swap every replica whose index checksum diverged."""
        router = self.router
        actions: list[AutopilotAction] = []
        divergent = router.divergent_replicas()
        if not divergent:
            return actions
        replica_sets = router.replica_sets()
        for shard_id in sorted(divergent):
            checksums = divergent[shard_id]
            replica_set = replica_sets.get(shard_id)
            if replica_set is None:
                actions.append(
                    AutopilotAction(
                        kind="repair_skipped",
                        tick=tick,
                        at_ms=now,
                        detail={"shard": shard_id, "why": "no_replica_set"},
                    )
                )
                continue
            if self.cluster.worker_pool is not None:
                repaired = self._repair_process_shard(
                    shard_id, checksums, replica_set
                )
            else:
                repaired = self._repair_thread_shard(
                    shard_id, checksums, replica_set
                )
            for detail in repaired:
                actions.append(
                    AutopilotAction(
                        kind="read_repair", tick=tick, at_ms=now, detail=detail
                    )
                )
        return actions

    def _repair_process_shard(
        self,
        shard_id: int,
        checksums: dict[str, str],
        replica_set: ReplicaService,
    ) -> list[dict[str, Any]]:
        """Respawn diverged worker replicas from a freshly re-sharded spec.

        The shard is rebuilt from the cluster's source backend under the
        *current* partitionings (repair must not move shard boundaries),
        giving both the replacement index and the ground-truth checksum
        to repair against.
        """
        router = self.router
        cluster = self.cluster
        if cluster.source is None:
            raise KyrixError(
                "read-repair needs the cluster's source backend "
                "(build the cluster with build_cluster / build_service)"
            )
        pool = cluster.worker_pool
        codecs = codec_preference(router.cluster_config.wire_codec)
        indexer = ShardedIndexer(
            cluster.source.database,
            router.compiled,
            router.config,
            cluster_config=router.cluster_config,
        )
        shards, _ = indexer.build_shards(
            dict(cluster.partitionings), tile_sizes=cluster.tile_sizes
        )
        repaired: list[dict[str, Any]] = []
        try:
            target = next(
                shard for shard in shards if shard.shard_id == shard_id
            )
            spec = build_shard_spec(
                target.database,
                router.compiled,
                router.config,
                shard_id=shard_id,
                codecs=codecs,
            )
            expected = spec.checksum()
            for key in sorted(checksums):
                if checksums[key] == expected:
                    continue
                replica_index = _replica_index(key)
                handle = pool.respawn(spec, replica_index=replica_index)
                stub = RemoteBackendStub(
                    handle.transport(),
                    router.compiled,
                    router.config,
                    codecs=codecs,
                )
                replica_set.swap_replica(
                    replica_index,
                    stub,
                    drain_timeout_s=router.cluster_config.rebalance_drain_timeout_s,
                )
                router.record_replica_checksum(
                    shard_id, replica_index, handle.checksum
                )
                repaired.append(
                    {
                        "shard": shard_id,
                        "replica": replica_index,
                        "was": checksums[key],
                        "now": handle.checksum,
                        "healthy": handle.checksum == expected,
                    }
                )
        finally:
            for shard in shards:
                shard.close()
        return repaired

    def _repair_thread_shard(
        self,
        shard_id: int,
        checksums: dict[str, str],
        replica_set: ReplicaService,
    ) -> list[dict[str, Any]]:
        """Rebuild diverged in-process replica stacks over the shared index.

        Thread replicas share the shard's immutable database, so the
        database's own hash is the ground truth; a diverged entry means
        the *stack* (or its recorded hash) is suspect, and repair is a
        fresh stack plus a truthful re-recorded checksum.
        """
        from .builder import replica_stack

        router = self.router
        shard = next(
            (s for s in router.shards if s.shard_id == shard_id), None
        )
        if shard is None or shard.database is None:
            return []
        expected = database_checksum(shard.database)
        codecs = codec_preference(router.cluster_config.wire_codec)
        repaired: list[dict[str, Any]] = []
        for key in sorted(checksums):
            if checksums[key] == expected:
                continue
            replica_index = _replica_index(key)
            replacement = replica_stack(
                shard,
                router.config,
                wire=router.cluster_config.wire_shards,
                codecs=codecs,
            )
            replica_set.swap_replica(
                replica_index,
                replacement,
                drain_timeout_s=router.cluster_config.rebalance_drain_timeout_s,
            )
            router.record_replica_checksum(shard_id, replica_index, expected)
            repaired.append(
                {
                    "shard": shard_id,
                    "replica": replica_index,
                    "was": checksums[key],
                    "now": expected,
                    "healthy": True,
                }
            )
        return repaired
