"""Viewport movement traces (Figure 5).

Three traces drive the evaluation:

* **trace a** — the viewport is always aligned with the boundaries of
  1024-pixel tiles; it moves leftwards six steps (each one tile length)
  and then vertically up six steps.
* **trace b** — the same movement, but the viewport is never aligned with
  tile boundaries (it starts offset by half a tile).
* **trace c** — the viewport moves diagonally from bottom-left to top-right
  in six steps.

A trace is a list of viewport top-left positions; the first position is the
initial load and each subsequent position is one pan step.  The default
starting points are chosen so that, on the Skewed dataset's default dense
region, the traces cross in and out of the dense area — mirroring Figure 5
where the traces overlap the shaded region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import KyrixError

#: The tile size the traces are defined against (Figure 5's dotted grid).
TRACE_TILE_SIZE = 1024


@dataclass(frozen=True)
class Trace:
    """A named sequence of viewport top-left positions."""

    name: str
    positions: tuple[tuple[float, float], ...]
    description: str = ""

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def steps(self) -> int:
        """Number of pan steps (positions after the initial load)."""
        return max(0, len(self.positions) - 1)

    def bounding_box(self, viewport_w: float, viewport_h: float) -> tuple[float, float, float, float]:
        """The canvas region touched by the trace (for sanity checks)."""
        xs = [p[0] for p in self.positions]
        ys = [p[1] for p in self.positions]
        return (min(xs), min(ys), max(xs) + viewport_w, max(ys) + viewport_h)


def _validate_fit(
    positions: Sequence[tuple[float, float]],
    canvas_width: float,
    canvas_height: float,
    viewport_w: float,
    viewport_h: float,
    name: str,
) -> None:
    for x, y in positions:
        if x < 0 or y < 0 or x + viewport_w > canvas_width or y + viewport_h > canvas_height:
            raise KyrixError(
                f"trace {name!r}: position ({x}, {y}) puts the viewport outside "
                f"the {canvas_width}x{canvas_height} canvas"
            )


def trace_a(
    canvas_width: float,
    canvas_height: float,
    *,
    viewport_w: float = 1024.0,
    viewport_h: float = 1024.0,
    tile_size: int = TRACE_TILE_SIZE,
    steps_each: int = 6,
) -> Trace:
    """Tile-aligned trace: left ``steps_each`` tiles, then up ``steps_each``.

    The start position is tile-aligned and placed so the whole trace fits on
    the canvas and passes through the default dense region of the Skewed
    dataset (which spans 30 %–70 % of the width and 25 %–75 % of the height).
    """
    start_col = int((canvas_width * 0.75) // tile_size)
    start_row = int((canvas_height * 0.65) // tile_size)
    # Clamp so that moving left/up by steps_each tiles stays on canvas.
    start_col = min(start_col, int(canvas_width // tile_size) - 1)
    start_col = max(start_col, steps_each)
    start_row = min(start_row, int((canvas_height - viewport_h) // tile_size))
    start_row = max(start_row, steps_each)
    x = float(start_col * tile_size)
    y = float(start_row * tile_size)

    positions = [(x, y)]
    for _ in range(steps_each):
        x -= tile_size
        positions.append((x, y))
    for _ in range(steps_each):
        y -= tile_size
        positions.append((x, y))
    _validate_fit(positions, canvas_width, canvas_height, viewport_w, viewport_h, "a")
    return Trace(
        name="a",
        positions=tuple(positions),
        description="tile-aligned: six steps left, six steps up",
    )


def trace_b(
    canvas_width: float,
    canvas_height: float,
    *,
    viewport_w: float = 1024.0,
    viewport_h: float = 1024.0,
    tile_size: int = TRACE_TILE_SIZE,
    steps_each: int = 6,
) -> Trace:
    """Misaligned trace: the same movement as trace a, offset by half a tile."""
    aligned = trace_a(
        canvas_width,
        canvas_height,
        viewport_w=viewport_w,
        viewport_h=viewport_h,
        tile_size=tile_size,
        steps_each=steps_each,
    )
    offset = tile_size / 2.0
    positions = [(x + offset, y + offset) for x, y in aligned.positions]
    _validate_fit(positions, canvas_width, canvas_height, viewport_w, viewport_h, "b")
    return Trace(
        name="b",
        positions=tuple(positions),
        description="never tile-aligned: six steps left, six steps up, offset by half a tile",
    )


def trace_c(
    canvas_width: float,
    canvas_height: float,
    *,
    viewport_w: float = 1024.0,
    viewport_h: float = 1024.0,
    tile_size: int = TRACE_TILE_SIZE,
    steps: int = 6,
) -> Trace:
    """Diagonal trace: bottom-left to top-right in ``steps`` steps."""
    # Start near the bottom-left third of the canvas, end toward the top-right,
    # crossing the dense region of the Skewed dataset on the way.
    x = canvas_width * 0.30 - (canvas_width * 0.30) % tile_size + tile_size / 2.0
    y = canvas_height - viewport_h - tile_size / 2.0
    step_dx = tile_size
    step_dy = -min(tile_size, (y - tile_size / 2.0) / steps)
    positions = [(x, y)]
    for _ in range(steps):
        x += step_dx
        y += step_dy
        positions.append((x, y))
    _validate_fit(positions, canvas_width, canvas_height, viewport_w, viewport_h, "c")
    return Trace(
        name="c",
        positions=tuple(positions),
        description="diagonal: bottom-left to top-right in six steps",
    )


def paper_traces(
    canvas_width: float,
    canvas_height: float,
    *,
    viewport_w: float = 1024.0,
    viewport_h: float = 1024.0,
    tile_size: int = TRACE_TILE_SIZE,
) -> dict[str, Trace]:
    """All three traces of Figure 5, keyed by name."""
    return {
        "a": trace_a(
            canvas_width, canvas_height,
            viewport_w=viewport_w, viewport_h=viewport_h, tile_size=tile_size,
        ),
        "b": trace_b(
            canvas_width, canvas_height,
            viewport_w=viewport_w, viewport_h=viewport_h, tile_size=tile_size,
        ),
        "c": trace_c(
            canvas_width, canvas_height,
            viewport_w=viewport_w, viewport_h=viewport_h, tile_size=tile_size,
        ),
    }


def random_walk_trace(
    canvas_width: float,
    canvas_height: float,
    *,
    viewport_w: float = 1024.0,
    viewport_h: float = 1024.0,
    steps: int = 12,
    step_size: float = 1024.0,
    seed: int = 0,
) -> Trace:
    """A random-walk trace (not in the paper; used for ablations and tests)."""
    import random

    rng = random.Random(seed)
    x = canvas_width / 2.0
    y = canvas_height / 2.0
    positions = [(x, y)]
    for _ in range(steps):
        dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
        x = min(max(0.0, x + dx * step_size), canvas_width - viewport_w)
        y = min(max(0.0, y + dy * step_size), canvas_height - viewport_h)
        positions.append((x, y))
    return Trace(name=f"random-{seed}", positions=tuple(positions), description="random walk")
