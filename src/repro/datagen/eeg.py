"""Synthetic EEG (electroencephalogram) data.

Section 4 describes a collaboration with MGH neurologists who "want to be
able to interactively explore 50 terabytes of EEG data collected from
sleeping subjects" with a temporal view, a spectral view and a clustering
view.  Real EEG recordings are not available offline, so this module
synthesises multi-channel sleep-like EEG: a mixture of band-limited
oscillations (delta/theta/alpha/spindle activity) plus noise, organised into
epochs — enough structure for the EEG example application to exercise the
same code paths (long time-series canvas, per-channel layers, semantic zoom
from a spectral overview into raw traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..storage.database import Database
from ..storage.table import Table

#: Frequency bands (Hz) mixed into the synthetic signal, with sleep-ish weights.
BANDS = {
    "delta": (0.5, 4.0, 3.0),
    "theta": (4.0, 8.0, 1.5),
    "alpha": (8.0, 12.0, 1.0),
    "spindle": (12.0, 15.0, 0.8),
}


@dataclass(frozen=True)
class EEGSpec:
    """Parameters of the synthetic EEG recording."""

    channels: int = 4
    sample_rate_hz: float = 64.0
    duration_s: float = 600.0
    epoch_s: float = 30.0
    amplitude_uv: float = 50.0
    seed: int = 7

    @property
    def samples_per_channel(self) -> int:
        return int(self.sample_rate_hz * self.duration_s)

    @property
    def epochs(self) -> int:
        return int(self.duration_s / self.epoch_s)


def lane_height(spec: EEGSpec) -> float:
    """Vertical extent of one channel's lane on the temporal canvas.

    The single source of the lane layout: :func:`generate_samples` places
    samples with it and every consumer of the canvas geometry (the EEG
    example/benchmark applications) must use it rather than re-deriving
    the scale factor.
    """
    return spec.amplitude_uv * 4.0


def generate_channel(spec: EEGSpec, channel: int) -> np.ndarray:
    """Synthesise one channel as a float array of micro-volt samples."""
    rng = np.random.default_rng(spec.seed + channel)
    t = np.arange(spec.samples_per_channel) / spec.sample_rate_hz
    signal = np.zeros_like(t)
    for low, high, weight in BANDS.values():
        frequency = rng.uniform(low, high)
        phase = rng.uniform(0, 2 * np.pi)
        signal += weight * np.sin(2 * np.pi * frequency * t + phase)
    signal += rng.normal(0.0, 0.5, size=t.shape)
    signal *= spec.amplitude_uv / max(1e-9, np.abs(signal).max())
    return signal


def generate_samples(spec: EEGSpec) -> Iterator[tuple]:
    """Yield rows ``(sample_id, channel, t_ms, value, bbox)``.

    The bbox places each sample on the temporal canvas: x = time in
    milliseconds, y = channel lane offset + scaled amplitude.
    """
    lane = lane_height(spec)
    sample_id = 0
    for channel in range(spec.channels):
        signal = generate_channel(spec, channel)
        lane_center = channel * lane + lane / 2.0
        for index, value in enumerate(signal):
            t_ms = index / spec.sample_rate_hz * 1000.0
            y = lane_center + float(value)
            yield (
                sample_id,
                channel,
                t_ms,
                float(value),
                (t_ms - 0.5, y - 0.5, t_ms + 0.5, y + 0.5),
            )
            sample_id += 1


def generate_epoch_features(spec: EEGSpec) -> Iterator[tuple]:
    """Yield per-epoch spectral features ``(epoch_id, channel, t_ms, delta, theta, alpha, spindle, bbox)``.

    Band powers are computed with a simple FFT per epoch — the data behind
    the "spectral view" of the MGH scenario.
    """
    samples_per_epoch = int(spec.epoch_s * spec.sample_rate_hz)
    lane_height = 100.0
    epoch_id = 0
    for channel in range(spec.channels):
        signal = generate_channel(spec, channel)
        lane_center = channel * lane_height + lane_height / 2.0
        for epoch in range(spec.epochs):
            chunk = signal[epoch * samples_per_epoch : (epoch + 1) * samples_per_epoch]
            if len(chunk) == 0:
                continue
            spectrum = np.abs(np.fft.rfft(chunk)) ** 2
            freqs = np.fft.rfftfreq(len(chunk), d=1.0 / spec.sample_rate_hz)
            powers = []
            for low, high, _ in BANDS.values():
                mask = (freqs >= low) & (freqs < high)
                powers.append(float(spectrum[mask].sum()) if mask.any() else 0.0)
            t_ms = epoch * spec.epoch_s * 1000.0
            bbox = (
                t_ms,
                lane_center - lane_height / 2.0,
                t_ms + spec.epoch_s * 1000.0,
                lane_center + lane_height / 2.0,
            )
            yield (epoch_id, channel, t_ms, *powers, bbox)
            epoch_id += 1


def load_eeg(database: Database, spec: EEGSpec | None = None) -> tuple[Table, Table]:
    """Create and populate the ``eeg_samples`` and ``eeg_epochs`` tables."""
    spec = spec or EEGSpec()
    samples = database.create_table(
        "eeg_samples",
        [
            ("sample_id", "integer"),
            ("channel", "integer"),
            ("t_ms", "float"),
            ("value", "float"),
            ("bbox", "bbox"),
        ],
    )
    samples.bulk_load(generate_samples(spec))
    samples.create_index("eeg_samples_id", "sample_id", "btree", unique=True)
    samples.create_index("eeg_samples_bbox", "bbox", "rtree")

    epochs = database.create_table(
        "eeg_epochs",
        [
            ("epoch_id", "integer"),
            ("channel", "integer"),
            ("t_ms", "float"),
            ("delta", "float"),
            ("theta", "float"),
            ("alpha", "float"),
            ("spindle", "float"),
            ("bbox", "bbox"),
        ],
    )
    epochs.bulk_load(generate_epoch_features(spec))
    epochs.create_index("eeg_epochs_id", "epoch_id", "btree", unique=True)
    epochs.create_index("eeg_epochs_bbox", "bbox", "rtree")
    return samples, epochs
