"""Synthetic US crime-rate map data (the example application of Figure 2/3).

The paper's example visualises US crime rates per state and per county.  The
real shapefiles and crime statistics are not available offline, so this
module generates a synthetic-but-structured stand-in: a grid of "states",
each subdivided into a grid of "counties", with crime rates drawn from a
seeded random generator.  The spatial structure (every county lies inside
its state, county canvases are a zoomed-in version of the state canvas) is
what the example and its jump need; the actual numbers are irrelevant to the
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..storage.database import Database
from ..storage.table import Table

#: Names used for the synthetic states (7 x 7 grid = 49 "states").
STATE_GRID = 7
COUNTIES_PER_STATE_SIDE = 5


@dataclass(frozen=True)
class USMapSpec:
    """Parameters of the synthetic US map.

    The state canvas is ``state_canvas_width x state_canvas_height``; the
    county canvas is the same map magnified by ``county_zoom`` (the paper's
    example multiplies coordinates by 5 in its ``newViewport`` function).
    """

    state_canvas_width: float = 7_000.0
    state_canvas_height: float = 7_000.0
    county_zoom: float = 5.0
    state_grid: int = STATE_GRID
    counties_per_state_side: int = COUNTIES_PER_STATE_SIDE
    seed: int = 42

    @property
    def county_canvas_width(self) -> float:
        return self.state_canvas_width * self.county_zoom

    @property
    def county_canvas_height(self) -> float:
        return self.state_canvas_height * self.county_zoom

    @property
    def state_count(self) -> int:
        return self.state_grid * self.state_grid

    @property
    def county_count(self) -> int:
        return self.state_count * self.counties_per_state_side**2


def _state_name(index: int) -> str:
    return f"State-{index:02d}"


def _county_name(state_index: int, county_index: int) -> str:
    return f"County-{state_index:02d}-{county_index:02d}"


def generate_states(spec: USMapSpec) -> Iterator[tuple]:
    """Yield state rows ``(state_id, name, cx, cy, width, height, rate, bbox)``."""
    rng = np.random.default_rng(spec.seed)
    cell_w = spec.state_canvas_width / spec.state_grid
    cell_h = spec.state_canvas_height / spec.state_grid
    for row in range(spec.state_grid):
        for col in range(spec.state_grid):
            state_id = row * spec.state_grid + col
            width = cell_w * 0.9
            height = cell_h * 0.9
            cx = col * cell_w + cell_w / 2.0
            cy = row * cell_h + cell_h / 2.0
            rate = float(rng.uniform(0.5, 9.5))
            bbox = (cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)
            yield (state_id, _state_name(state_id), cx, cy, width, height, rate, bbox)


def generate_counties(spec: USMapSpec) -> Iterator[tuple]:
    """Yield county rows ``(county_id, state_id, name, cx, cy, width, height, rate, bbox)``.

    County coordinates live on the (larger) county canvas: the state canvas
    scaled by ``county_zoom``.
    """
    rng = np.random.default_rng(spec.seed + 1)
    zoom = spec.county_zoom
    cell_w = spec.state_canvas_width / spec.state_grid * zoom
    cell_h = spec.state_canvas_height / spec.state_grid * zoom
    side = spec.counties_per_state_side
    county_id = 0
    for state_row in range(spec.state_grid):
        for state_col in range(spec.state_grid):
            state_id = state_row * spec.state_grid + state_col
            state_x0 = state_col * cell_w
            state_y0 = state_row * cell_h
            sub_w = cell_w / side
            sub_h = cell_h / side
            for sub_row in range(side):
                for sub_col in range(side):
                    width = sub_w * 0.85
                    height = sub_h * 0.85
                    cx = state_x0 + sub_col * sub_w + sub_w / 2.0
                    cy = state_y0 + sub_row * sub_h + sub_h / 2.0
                    rate = float(rng.uniform(0.1, 12.0))
                    bbox = (
                        cx - width / 2, cy - height / 2,
                        cx + width / 2, cy + height / 2,
                    )
                    yield (
                        county_id, state_id,
                        _county_name(state_id, county_id), cx, cy,
                        width, height, rate, bbox,
                    )
                    county_id += 1


def load_usmap(database: Database, spec: USMapSpec | None = None) -> tuple[Table, Table]:
    """Create and populate the ``states`` and ``counties`` tables."""
    spec = spec or USMapSpec()
    states = database.create_table(
        "states",
        [
            ("state_id", "integer"),
            ("name", "text"),
            ("cx", "float"),
            ("cy", "float"),
            ("width", "float"),
            ("height", "float"),
            ("rate", "float"),
            ("bbox", "bbox"),
        ],
    )
    states.bulk_load(generate_states(spec))
    states.create_index("states_id", "state_id", "btree", unique=True)
    states.create_index("states_bbox", "bbox", "rtree")

    counties = database.create_table(
        "counties",
        [
            ("county_id", "integer"),
            ("state_id", "integer"),
            ("name", "text"),
            ("cx", "float"),
            ("cy", "float"),
            ("width", "float"),
            ("height", "float"),
            ("rate", "float"),
            ("bbox", "bbox"),
        ],
    )
    counties.bulk_load(generate_counties(spec))
    counties.create_index("counties_id", "county_id", "btree", unique=True)
    counties.create_index("counties_state", "state_id", "btree")
    counties.create_index("counties_bbox", "bbox", "rtree")
    return states, counties
