"""Synthetic data generators for the datasets the paper uses or motivates.

* :mod:`repro.datagen.synthetic` — the *Uniform* and *Skewed* dot datasets
  of the evaluation (Section 3.3),
* :mod:`repro.datagen.traces` — the viewport movement traces of Figure 5,
* :mod:`repro.datagen.usmap` — a synthetic US states/counties crime-rate map
  for the example application of Figures 2/3,
* :mod:`repro.datagen.eeg` — synthetic multi-channel sleep EEG for the MGH
  scenario of Section 4.
"""

from .eeg import EEGSpec, generate_channel, generate_epoch_features, generate_samples, load_eeg
from .synthetic import (
    DotDatasetSpec,
    PAPER_DENSITY,
    generate_points,
    generate_rows,
    load_dots,
    paper_scale_spec,
    skewed_spec,
    tiny_spec,
    uniform_spec,
)
from .traces import (
    TRACE_TILE_SIZE,
    Trace,
    paper_traces,
    random_walk_trace,
    trace_a,
    trace_b,
    trace_c,
)
from .usmap import USMapSpec, generate_counties, generate_states, load_usmap

__all__ = [
    "DotDatasetSpec",
    "EEGSpec",
    "PAPER_DENSITY",
    "TRACE_TILE_SIZE",
    "Trace",
    "USMapSpec",
    "generate_channel",
    "generate_counties",
    "generate_epoch_features",
    "generate_points",
    "generate_rows",
    "generate_samples",
    "generate_states",
    "load_dots",
    "load_eeg",
    "load_usmap",
    "paper_scale_spec",
    "paper_traces",
    "random_walk_trace",
    "skewed_spec",
    "tiny_spec",
    "trace_a",
    "trace_b",
    "trace_c",
    "uniform_spec",
]
