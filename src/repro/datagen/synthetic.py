"""Synthetic dot datasets: *Uniform* and *Skewed* (Section 3.3).

The paper uses 100 M random dots on a 1 M x 0.1 M canvas ("Uniform") and a
variant where 80 M dots lie in 20 % of the canvas area ("Skewed").  A pure
Python + numpy reproduction cannot hold 100 M rows, so the default scale is
reduced while keeping the quantity that drives per-step cost — the number of
objects per viewport (dot density) — in the same regime.  The full-size
parameters remain available through :func:`paper_scale_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import KyrixError
from ..storage.database import Database
from ..storage.table import Table

#: Dot density of the paper's datasets: 100M dots / (1M x 0.1M) px².
PAPER_DENSITY = 100_000_000 / (1_000_000 * 100_000)


@dataclass(frozen=True)
class DotDatasetSpec:
    """Parameters of a synthetic dot dataset.

    Attributes
    ----------
    name:
        Dataset label ("uniform" / "skewed"), also used as the table name.
    canvas_width / canvas_height:
        Canvas dimensions in pixels.
    num_points:
        Total number of dots.
    skewed:
        When true, ``dense_fraction`` of the dots are drawn inside the dense
        rectangle and the rest uniformly over the whole canvas.
    dense_fraction:
        Fraction of dots falling in the dense region (paper: 0.8).
    dense_region:
        The dense rectangle as fractions of the canvas
        ``(x_frac, y_frac, width_frac, height_frac)``; the paper uses a
        0.4 M x 0.05 M rectangle on a 1 M x 0.1 M canvas = (0.4, 0.5) of each
        dimension, i.e. 20 % of the area.
    half_extent:
        Half the rendered size of a dot; its bbox is the point buffered by
        this amount (the paper notes records render bigger than one pixel).
    seed:
        RNG seed, so datasets are reproducible.
    """

    name: str
    canvas_width: float = 32_768.0
    canvas_height: float = 8_192.0
    num_points: int = 250_000
    skewed: bool = False
    dense_fraction: float = 0.8
    dense_region: tuple[float, float, float, float] = (0.30, 0.25, 0.40, 0.50)
    half_extent: float = 0.5
    seed: int = 1729

    def __post_init__(self) -> None:
        if self.num_points <= 0:
            raise KyrixError("num_points must be positive")
        if self.canvas_width <= 0 or self.canvas_height <= 0:
            raise KyrixError("canvas dimensions must be positive")
        if not 0.0 < self.dense_fraction < 1.0:
            if self.skewed:
                raise KyrixError("dense_fraction must be in (0, 1) for skewed datasets")

    @property
    def density(self) -> float:
        """Average dots per canvas pixel²."""
        return self.num_points / (self.canvas_width * self.canvas_height)

    @property
    def dense_rect(self) -> tuple[float, float, float, float]:
        """The dense region in canvas coordinates (xmin, ymin, xmax, ymax)."""
        x_frac, y_frac, w_frac, h_frac = self.dense_region
        xmin = x_frac * self.canvas_width
        ymin = y_frac * self.canvas_height
        return (
            xmin,
            ymin,
            xmin + w_frac * self.canvas_width,
            ymin + h_frac * self.canvas_height,
        )

    def expected_objects_per_viewport(self, viewport_w: float, viewport_h: float) -> float:
        """Expected dots inside a viewport placed on an average region."""
        return self.density * viewport_w * viewport_h


# ---------------------------------------------------------------------------
# Canonical dataset specs
# ---------------------------------------------------------------------------


def uniform_spec(
    *,
    num_points: int = 250_000,
    canvas_width: float = 32_768.0,
    canvas_height: float = 8_192.0,
    seed: int = 1729,
) -> DotDatasetSpec:
    """The *Uniform* dataset at the library's default (reduced) scale."""
    return DotDatasetSpec(
        name="uniform",
        canvas_width=canvas_width,
        canvas_height=canvas_height,
        num_points=num_points,
        skewed=False,
        seed=seed,
    )


def skewed_spec(
    *,
    num_points: int = 250_000,
    canvas_width: float = 32_768.0,
    canvas_height: float = 8_192.0,
    seed: int = 1729,
) -> DotDatasetSpec:
    """The *Skewed* dataset: 80 % of the dots in 20 % of the canvas area."""
    return DotDatasetSpec(
        name="skewed",
        canvas_width=canvas_width,
        canvas_height=canvas_height,
        num_points=num_points,
        skewed=True,
        seed=seed,
    )


def paper_scale_spec(name: str = "uniform") -> DotDatasetSpec:
    """The full-size parameters used in the paper (100 M dots, 1 M x 0.1 M).

    Provided for completeness; generating this size in pure Python is not
    practical, so the benchmarks use the reduced-scale specs above.
    """
    skewed = name.lower() == "skewed"
    return DotDatasetSpec(
        name=name.lower(),
        canvas_width=1_000_000.0,
        canvas_height=100_000.0,
        num_points=100_000_000,
        skewed=skewed,
    )


def tiny_spec(name: str = "uniform", *, num_points: int = 4_000, seed: int = 7) -> DotDatasetSpec:
    """A small dataset (4 k dots on an 8192 x 4096 canvas) for unit tests."""
    return DotDatasetSpec(
        name=name.lower(),
        canvas_width=8_192.0,
        canvas_height=4_096.0,
        num_points=num_points,
        skewed=name.lower() == "skewed",
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Generation and loading
# ---------------------------------------------------------------------------


def generate_points(spec: DotDatasetSpec) -> np.ndarray:
    """Return an ``(N, 2)`` float array of dot coordinates for ``spec``."""
    rng = np.random.default_rng(spec.seed)
    if not spec.skewed:
        xs = rng.uniform(0.0, spec.canvas_width, spec.num_points)
        ys = rng.uniform(0.0, spec.canvas_height, spec.num_points)
        return np.column_stack([xs, ys])

    dense_count = int(round(spec.num_points * spec.dense_fraction))
    sparse_count = spec.num_points - dense_count
    xmin, ymin, xmax, ymax = spec.dense_rect
    dense_xs = rng.uniform(xmin, xmax, dense_count)
    dense_ys = rng.uniform(ymin, ymax, dense_count)
    sparse_xs = rng.uniform(0.0, spec.canvas_width, sparse_count)
    sparse_ys = rng.uniform(0.0, spec.canvas_height, sparse_count)
    xs = np.concatenate([dense_xs, sparse_xs])
    ys = np.concatenate([dense_ys, sparse_ys])
    order = rng.permutation(spec.num_points)
    return np.column_stack([xs[order], ys[order]])


def generate_rows(spec: DotDatasetSpec) -> Iterator[tuple]:
    """Yield table rows ``(tuple_id, x, y, bbox)`` for ``spec``."""
    points = generate_points(spec)
    half = spec.half_extent
    for tuple_id, (x, y) in enumerate(points):
        x = float(x)
        y = float(y)
        yield (tuple_id, x, y, (x - half, y - half, x + half, y + half))


def load_dots(
    database: Database,
    spec: DotDatasetSpec,
    *,
    table_name: str | None = None,
    with_indexes: bool = True,
) -> Table:
    """Create and populate the dots table for ``spec``.

    The table has the raw-data schema the paper's database designs build on:
    ``tuple_id`` (auto-increment id), ``x``, ``y`` and ``bbox``.  When
    ``with_indexes`` is true, a unique B-tree on ``tuple_id`` and an R-tree
    on ``bbox`` are created (the "DBA-built" indexes of the separable case).
    """
    name = table_name or spec.name
    table = database.create_table(
        name,
        [
            ("tuple_id", "integer"),
            ("x", "float"),
            ("y", "float"),
            ("bbox", "bbox"),
        ],
    )
    table.bulk_load(generate_rows(spec))
    if with_indexes:
        table.create_index(f"{name}_tuple_id", "tuple_id", "btree", unique=True)
        table.create_index(f"{name}_bbox", "bbox", "rtree")
    return table
